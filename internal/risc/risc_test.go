package risc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/vm"
)

// Programs shared with the interpreter tests, used here for differential
// testing: both backends must agree on final status, halt code and output.

func factProgram(n int64) *fir.Program {
	b := fir.NewBuilder()
	b.Let("done", fir.TyInt, fir.OpLe, fir.V("n"), fir.I(1))
	fact := fir.Fn("fact", fir.Ps("n", fir.TyInt, "acc", fir.TyInt),
		b.If(fir.V("done"),
			fir.Halt{Code: fir.V("acc")},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("n2", fir.TyInt, fir.OpSub, fir.V("n"), fir.I(1))
				b2.Let("acc2", fir.TyInt, fir.OpMul, fir.V("acc"), fir.V("n"))
				return b2.CallNamed("fact", fir.V("n2"), fir.V("acc2"))
			}()))
	main := fir.Fn("main", nil, fir.NewBuilder().CallNamed("fact", fir.I(n), fir.I(1)))
	return fir.NewProgram("main", main, fact)
}

func heapFillSumProgram() *fir.Program {
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(64))
	main := fir.Fn("main", nil, b.CallNamed("fill", fir.V("p"), fir.I(0)))
	fb := fir.NewBuilder()
	fb.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(64))
	fill := fir.Fn("fill", fir.Ps("p", fir.TyPtr, "i", fir.TyInt),
		fb.If(fir.V("done"),
			fir.NewBuilder().CallNamed("sum", fir.V("p"), fir.I(0), fir.I(0)),
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("sq", fir.TyInt, fir.OpMul, fir.V("i"), fir.V("i"))
				b2.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.V("i"), fir.V("sq"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("fill", fir.V("p"), fir.V("i2"))
			}()))
	sb := fir.NewBuilder()
	sb.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(64))
	sum := fir.Fn("sum", fir.Ps("p", fir.TyPtr, "i", fir.TyInt, "acc", fir.TyInt),
		sb.If(fir.V("done"),
			fir.Halt{Code: fir.V("acc")},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.V("i"))
				b2.Let("acc2", fir.TyInt, fir.OpAdd, fir.V("acc"), fir.V("x"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("sum", fir.V("p"), fir.V("i2"), fir.V("acc2"))
			}()))
	return fir.NewProgram("main", main, fill, sum)
}

func specRetryProgram() *fir.Program {
	b := fir.NewBuilder()
	b.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	main := fir.Fn("main", nil, b.Speculate("body", fir.V("p")))
	bb := fir.NewBuilder()
	bb.Let("x", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	bb.Let("x2", fir.TyInt, fir.OpAdd, fir.V("x"), fir.I(1))
	bb.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.V("x2"))
	bb.Let("first", fir.TyInt, fir.OpEq, fir.V("c"), fir.I(0))
	body := fir.Fn("body", fir.Ps("c", fir.TyInt, "p", fir.TyPtr),
		bb.If(fir.V("first"),
			fir.NewBuilder().Rollback(fir.I(1), fir.I(1)),
			fir.NewBuilder().Commit(fir.I(1), "end", fir.V("p"))))
	eb := fir.NewBuilder()
	eb.Let("v", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	end := fir.Fn("end", fir.Ps("p", fir.TyPtr), eb.Halt(fir.V("v")))
	return fir.NewProgram("main", main, body, end)
}

func printLoopProgram() *fir.Program {
	b := fir.NewBuilder()
	b.Let("done", fir.TyInt, fir.OpGe, fir.V("i"), fir.I(5))
	loop := fir.Fn("loop", fir.Ps("i", fir.TyInt),
		b.If(fir.V("done"),
			fir.Halt{Code: fir.I(0)},
			func() fir.Expr {
				b2 := fir.NewBuilder()
				b2.Let("sq", fir.TyInt, fir.OpMul, fir.V("i"), fir.V("i"))
				b2.Extern("u", fir.TyUnit, "print_int", fir.V("sq"))
				b2.Let("i2", fir.TyInt, fir.OpAdd, fir.V("i"), fir.I(1))
				return b2.CallNamed("loop", fir.V("i2"))
			}()))
	main := fir.Fn("main", nil, fir.NewBuilder().CallNamed("loop", fir.I(0)))
	return fir.NewProgram("main", main, loop)
}

// floatProgram exercises float ops and conversions.
func floatProgram() *fir.Program {
	b := fir.NewBuilder()
	b.Let("x", fir.TyFloat, fir.OpFAdd, fir.F(1.5), fir.F(2.25))
	b.Let("y", fir.TyFloat, fir.OpFMul, fir.V("x"), fir.F(4))
	b.Let("lt", fir.TyInt, fir.OpFLt, fir.V("x"), fir.V("y"))
	b.Let("i", fir.TyInt, fir.OpFloatToInt, fir.V("y"))
	b.Let("code", fir.TyInt, fir.OpAdd, fir.V("i"), fir.V("lt"))
	main := fir.Fn("main", nil, b.Halt(fir.V("code")))
	return fir.NewProgram("main", main)
}

// manyVarsProgram defines more live variables than machine registers,
// forcing the allocator to spill.
func manyVarsProgram() *fir.Program {
	b := fir.NewBuilder()
	var names []string
	for i := 0; i < NumRegs+12; i++ {
		n := b.Fresh("v")
		b.Let(n, fir.TyInt, fir.OpAdd, fir.I(int64(i)), fir.I(1))
		names = append(names, n)
	}
	// Sum them all so every one stays live to the end.
	acc := fir.Atom(fir.I(0))
	for _, n := range names {
		d := b.Fresh("acc")
		b.Let(d, fir.TyInt, fir.OpAdd, acc, fir.V(n))
		acc = fir.V(d)
	}
	main := fir.Fn("main", nil, b.Halt(acc))
	return fir.NewProgram("main", main)
}

// runBoth executes the program on both backends and requires agreement.
func runBoth(t *testing.T, p *fir.Program) (int64, string) {
	t.Helper()
	var vmOut bytes.Buffer
	proc := vm.NewProcess(p, vm.Config{Fuel: 1_000_000, Stdout: &vmOut, Seed: 7})
	if err := proc.Start(); err != nil {
		t.Fatalf("vm Start: %v", err)
	}
	vst, _ := proc.Run()

	var mOut bytes.Buffer
	m, err := NewMachine(p, nil, Config{Fuel: 1_000_000, Stdout: &mOut, Seed: 7})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatalf("risc Start: %v", err)
	}
	mst, _ := m.Run()

	if vst != mst {
		t.Fatalf("status diverged: vm=%s risc=%s (vm err=%v, risc err=%v)", vst, mst, proc.Err(), m.Err())
	}
	if proc.HaltCode() != m.HaltCode() {
		t.Fatalf("halt code diverged: vm=%d risc=%d", proc.HaltCode(), m.HaltCode())
	}
	if vmOut.String() != mOut.String() {
		t.Fatalf("output diverged:\nvm:   %q\nrisc: %q", vmOut.String(), mOut.String())
	}
	return m.HaltCode(), mOut.String()
}

func TestDifferentialBackends(t *testing.T) {
	progs := map[string]*fir.Program{
		"factorial":  factProgram(10),
		"heapSum":    heapFillSumProgram(),
		"specRetry":  specRetryProgram(),
		"printLoop":  printLoopProgram(),
		"floats":     floatProgram(),
		"spillHeavy": manyVarsProgram(),
	}
	for name, p := range progs {
		t.Run(name, func(t *testing.T) { runBoth(t, p) })
	}
}

func TestFactorialResult(t *testing.T) {
	code, _ := runBoth(t, factProgram(10))
	if code != 3628800 {
		t.Fatalf("fact(10) = %d, want 3628800", code)
	}
}

func TestSpillingHappens(t *testing.T) {
	mod, err := Compile(manyVarsProgram())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if mod.SpillSlots == 0 {
		t.Fatalf("program with %d+ live variables compiled with no spills", NumRegs+12)
	}
	code, _ := runBoth(t, manyVarsProgram())
	want := int64(0)
	for i := 0; i < NumRegs+12; i++ {
		want += int64(i) + 1
	}
	if code != want {
		t.Fatalf("spill-heavy sum = %d, want %d", code, want)
	}
}

func TestPrintOutput(t *testing.T) {
	_, out := runBoth(t, printLoopProgram())
	if out != "0\n1\n4\n9\n16\n" {
		t.Fatalf("output = %q", out)
	}
}

func TestDisassemble(t *testing.T) {
	mod, err := Compile(factProgram(5))
	if err != nil {
		t.Fatal(err)
	}
	asm := mod.Disassemble()
	for _, want := range []string{"main:", "fact:", "halt", "call", "brz"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestMachineMigrateHandler(t *testing.T) {
	b := fir.NewBuilder()
	b.Extern("tgt", fir.TyPtr, "mkstr")
	main := fir.Fn("main", nil, b.Migrate(4, fir.V("tgt"), fir.I(0), "after"))
	after := fir.Fn("after", nil, fir.NewBuilder().Halt(fir.I(77)))
	p := fir.NewProgram("main", main, after)

	m, err := NewMachine(p, nil, Config{Fuel: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m.RegisterExtern("mkstr", fir.ExternSig{Result: fir.TyPtr},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			return r.Heap().AllocString("checkpoint://ck")
		})
	var sawTarget string
	var sawLabel int
	m.SetMigrateHandler(func(req *rt.MigrationRequest) (rt.MigrateOutcome, error) {
		sawTarget = req.Target
		sawLabel = req.Label
		return rt.OutcomeContinueLocal, nil
	})
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || m.HaltCode() != 77 {
		t.Fatalf("status=%s code=%d, want halted 77", st, m.HaltCode())
	}
	if sawTarget != "checkpoint://ck" || sawLabel != 4 {
		t.Fatalf("handler saw target=%q label=%d", sawTarget, sawLabel)
	}
}

func TestCompilePreservesFunctionTableOrder(t *testing.T) {
	p := heapFillSumProgram()
	mod, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.FnEntry) != len(p.Funcs) {
		t.Fatalf("FnEntry has %d entries, want %d", len(mod.FnEntry), len(p.Funcs))
	}
	for i, f := range p.Funcs {
		if mod.FnName[i] != f.Name {
			t.Fatalf("function %d is %q in module, %q in program", i, mod.FnName[i], f.Name)
		}
	}
}
