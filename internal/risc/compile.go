package risc

import (
	"fmt"
	"maps"
	"math"
	"sort"

	"repro/internal/fir"
	"repro/internal/heap"
)

// Compile translates a type-checked FIR program into a RISC module:
// lowering to virtual-register code, liveness analysis, linear-scan
// register allocation with spilling, and branch fixup. This is the work a
// migration server performs when an inbound process arrives (§4.2.2) —
// together with fir.Check it is the "recompilation" component of the
// untrusted migration cost in experiment E1.
func Compile(prog *fir.Program) (*Module, error) {
	c := &compiler{
		prog:      prog,
		externIdx: make(map[string]int),
	}
	m := &Module{
		FnEntry:      make([]int, len(prog.Funcs)),
		FnParams:     make([][]Loc, len(prog.Funcs)),
		FnParamKinds: make([][]heap.Kind, len(prog.Funcs)),
		FnName:       make([]string, len(prog.Funcs)),
	}
	for i, f := range prog.Funcs {
		fc := &fnCompiler{c: c, fn: f}
		if err := fc.lower(); err != nil {
			return nil, err
		}
		locs, spills := fc.allocate()
		code, params, err := fc.finalize(locs, len(m.Code))
		if err != nil {
			return nil, err
		}
		m.FnEntry[i] = len(m.Code)
		m.FnParams[i] = params
		m.FnParamKinds[i] = paramKinds(f)
		m.FnName[i] = f.Name
		m.Code = append(m.Code, code...)
		if spills > m.SpillSlots {
			m.SpillSlots = spills
		}
	}
	_, entryIdx := prog.Lookup(prog.Entry)
	if entryIdx < 0 {
		return nil, fmt.Errorf("risc: entry function %q not found", prog.Entry)
	}
	m.Entry = m.FnEntry[entryIdx]
	m.Externs = c.externs
	m.Consts = c.consts
	return m, nil
}

type compiler struct {
	prog      *fir.Program
	externs   []string
	externIdx map[string]int
	consts    []heap.Value
	constIdx  map[constKey]int
}

// constKey interns constants by exact bit pattern: float payloads go
// through Float64bits so -0.0 and +0.0 (which compare equal in Go) keep
// distinct pool entries — the immediate the old OLdi path carried must
// survive bit-for-bit — and NaN literals (never equal to themselves)
// still dedupe.
type constKey struct {
	kind heap.Kind
	i    int64
	off  int64
	f    uint64
}

func keyOf(v heap.Value) constKey {
	return constKey{kind: v.Kind, i: v.I, off: v.Off, f: math.Float64bits(v.F)}
}

func (c *compiler) extern(name string) int {
	if i, ok := c.externIdx[name]; ok {
		return i
	}
	i := len(c.externs)
	c.externs = append(c.externs, name)
	c.externIdx[name] = i
	return i
}

// paramKinds resolves each parameter's FIR type to the runtime tag the
// call convention checks; unresolvable kinds fall back to the slow path.
func paramKinds(f *fir.Function) []heap.Kind {
	if len(f.Params) == 0 {
		return nil
	}
	out := make([]heap.Kind, len(f.Params))
	for i, prm := range f.Params {
		switch prm.Type.Kind {
		case fir.KindInt:
			out[i] = heap.KInt
		case fir.KindFloat:
			out[i] = heap.KFloat
		case fir.KindPtr:
			out[i] = heap.KPtr
		case fir.KindFun:
			out[i] = heap.KFun
		case fir.KindUnit:
			out[i] = heap.KUnit
		default:
			out[i] = KindCheckSlow
		}
	}
	return out
}

// constant interns a literal value in the module constant pool.
func (c *compiler) constant(v heap.Value) int {
	if c.constIdx == nil {
		c.constIdx = make(map[constKey]int)
	}
	k := keyOf(v)
	if i, ok := c.constIdx[k]; ok {
		return i
	}
	i := len(c.consts)
	c.consts = append(c.consts, v)
	c.constIdx[k] = i
	return i
}

// vop is a virtual operand: a virtual register, a constant-pool index, or
// absent (both negative).
type vop struct {
	v int // virtual register, -1 when not a register
	c int // constant-pool index, -1 when not a constant
}

var noOp = vop{v: -1, c: -1}

func vreg(v int) vop   { return vop{v: v, c: -1} }
func vconst(c int) vop { return vop{v: -1, c: c} }

// vinstr is an instruction over virtual operands. target holds a label id
// for branches until fixup.
type vinstr struct {
	op       OpCode
	alu      fir.Op
	dst      int
	a, b, cc vop
	imm      heap.Value
	loadTy   fir.Type
	target   int
	args     []vop
}

type fnCompiler struct {
	c      *compiler
	fn     *fir.Function
	code   []vinstr
	nv     int   // virtual register count
	labels []int // label id -> vcode position
	params []int // param vregs
}

func (fc *fnCompiler) newVreg() int {
	v := fc.nv
	fc.nv++
	return v
}

func (fc *fnCompiler) newLabel() int {
	fc.labels = append(fc.labels, -1)
	return len(fc.labels) - 1
}

func (fc *fnCompiler) place(label int) {
	fc.labels[label] = len(fc.code)
}

func (fc *fnCompiler) emit(in vinstr) {
	fc.code = append(fc.code, in)
}

// atom lowers an atom to a virtual operand: variables stay in vregs,
// literals are interned in the module constant pool (no load instruction
// on the execution path).
func (fc *fnCompiler) atom(a fir.Atom, env map[string]int) (vop, error) {
	switch a := a.(type) {
	case fir.Var:
		v, ok := env[a.Name]
		if !ok {
			return noOp, fmt.Errorf("risc: unbound variable %q in %s", a.Name, fc.fn.Name)
		}
		return vreg(v), nil
	case fir.IntLit:
		return vconst(fc.c.constant(heap.IntVal(a.V))), nil
	case fir.FloatLit:
		return vconst(fc.c.constant(heap.FloatVal(a.V))), nil
	case fir.FunLit:
		_, idx := fc.c.prog.Lookup(a.Name)
		if idx < 0 {
			return noOp, fmt.Errorf("risc: undefined function %q in %s", a.Name, fc.fn.Name)
		}
		return vconst(fc.c.constant(heap.FunVal(int64(idx)))), nil
	case fir.UnitLit:
		return vconst(fc.c.constant(heap.UnitVal())), nil
	default:
		return noOp, fmt.Errorf("risc: unknown atom %T in %s", a, fc.fn.Name)
	}
}

func (fc *fnCompiler) atoms(as []fir.Atom, env map[string]int) ([]vop, error) {
	out := make([]vop, len(as))
	for i, a := range as {
		v, err := fc.atom(a, env)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// lower generates virtual-register code for the function body.
func (fc *fnCompiler) lower() error {
	env := make(map[string]int, len(fc.fn.Params))
	for _, p := range fc.fn.Params {
		v := fc.newVreg()
		fc.params = append(fc.params, v)
		env[p.Name] = v
	}
	return fc.expr(fc.fn.Body, env)
}

func (fc *fnCompiler) expr(e fir.Expr, env map[string]int) error {
	for {
		switch e2 := e.(type) {
		case fir.Let:
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			dst := fc.newVreg()
			in := vinstr{op: OAlu, alu: e2.Op, dst: dst, a: noOp, b: noOp, cc: noOp, loadTy: e2.DstType}
			if e2.Op == fir.OpMove {
				in = vinstr{op: OMov, dst: dst, a: args[0], b: noOp, cc: noOp}
			} else {
				switch len(args) {
				case 0:
				case 1:
					in.a = args[0]
				case 2:
					in.a, in.b = args[0], args[1]
				case 3:
					in.a, in.b, in.cc = args[0], args[1], args[2]
				default:
					return fmt.Errorf("risc: operator %s with %d operands", e2.Op, len(args))
				}
			}
			fc.emit(in)
			env = extendEnv(env, e2.Dst, dst)
			e = e2.Body

		case fir.Extern:
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			dst := fc.newVreg()
			fc.emit(vinstr{op: OExt, dst: dst, a: noOp, b: noOp, cc: noOp, target: fc.c.extern(e2.Name), args: args, loadTy: e2.DstType})
			env = extendEnv(env, e2.Dst, dst)
			e = e2.Body

		case fir.If:
			cv, err := fc.atom(e2.Cond, env)
			if err != nil {
				return err
			}
			elseL := fc.newLabel()
			fc.emit(vinstr{op: OBrz, dst: -1, a: cv, b: noOp, cc: noOp, target: elseL})
			// The then branch gets a clone so its bindings stay invisible
			// to the else branch; extendEnv can then mutate in place.
			if err := fc.expr(e2.Then, maps.Clone(env)); err != nil {
				return err
			}
			fc.place(elseL)
			e = e2.Else

		case fir.Call:
			fv, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: OCall, dst: -1, a: fv, b: noOp, cc: noOp, args: args})
			return nil

		case fir.Halt:
			cv, err := fc.atom(e2.Code, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: OHalt, dst: -1, a: cv, b: noOp, cc: noOp})
			return nil

		case fir.Speculate:
			fv, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: OSpec, dst: -1, a: fv, b: noOp, cc: noOp, args: args})
			return nil

		case fir.Commit:
			lv, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			fv, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: OCommit, dst: -1, a: lv, b: fv, cc: noOp, args: args})
			return nil

		case fir.Rollback:
			lv, err := fc.atom(e2.Level, env)
			if err != nil {
				return err
			}
			cv, err := fc.atom(e2.C, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: ORollbk, dst: -1, a: lv, b: cv, cc: noOp})
			return nil

		case fir.Migrate:
			tv, err := fc.atom(e2.Target, env)
			if err != nil {
				return err
			}
			ov, err := fc.atom(e2.TargetOff, env)
			if err != nil {
				return err
			}
			fv, err := fc.atom(e2.Fn, env)
			if err != nil {
				return err
			}
			args, err := fc.atoms(e2.Args, env)
			if err != nil {
				return err
			}
			fc.emit(vinstr{op: OMigr, dst: -1, a: tv, b: ov, cc: fv, target: e2.Label, args: args})
			return nil

		default:
			return fmt.Errorf("risc: unknown expression %T in %s", e2, fc.fn.Name)
		}
	}
}

func extendEnv(env map[string]int, name string, v int) map[string]int {
	// In-place extension: a CPS chain never forks, so sibling-branch
	// independence is preserved by the clone at the If branch point.
	// Copying per binding made lowering O(bindings²).
	env[name] = v
	return env
}

// interval is a virtual register's live range over linear vcode positions.
// FIR bodies contain only forward branches (loops are tail calls), so a
// [firstDef, lastUse] interval is exact.
type interval struct {
	vreg       int
	start, end int
}

// allocate runs liveness analysis and linear-scan register allocation,
// returning the location of every vreg and the spill-slot count.
func (fc *fnCompiler) allocate() ([]Loc, int) {
	start := make([]int, fc.nv)
	end := make([]int, fc.nv)
	for i := range start {
		start[i] = -2 // unseen
	}
	for _, v := range fc.params {
		start[v] = -1 // defined at entry
		end[v] = -1
	}
	touch := func(v, pos int) {
		if v < 0 {
			return
		}
		if start[v] == -2 {
			start[v] = pos
		}
		if pos > end[v] {
			end[v] = pos
		}
	}
	for pos, in := range fc.code {
		touch(in.dst, pos)
		touch(in.a.v, pos)
		touch(in.b.v, pos)
		touch(in.cc.v, pos)
		for _, v := range in.args {
			touch(v.v, pos)
		}
	}

	intervals := make([]interval, 0, fc.nv)
	for v := 0; v < fc.nv; v++ {
		if start[v] == -2 {
			continue
		}
		intervals = append(intervals, interval{vreg: v, start: start[v], end: end[v]})
	}
	sort.Slice(intervals, func(a, b int) bool {
		if intervals[a].start != intervals[b].start {
			return intervals[a].start < intervals[b].start
		}
		return intervals[a].vreg < intervals[b].vreg
	})

	locs := make([]Loc, fc.nv)
	var free []int
	for r := NumRegs - 1; r >= 0; r-- {
		free = append(free, r)
	}
	type active struct {
		end  int
		vreg int
		reg  int
	}
	var act []active
	spills := 0
	spillSlot := func() int {
		s := spills
		spills++
		return s
	}
	for _, iv := range intervals {
		// Expire intervals that ended before this one starts.
		keep := act[:0]
		for _, a := range act {
			if a.end < iv.start {
				free = append(free, a.reg)
			} else {
				keep = append(keep, a)
			}
		}
		act = keep
		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			locs[iv.vreg] = Reg(r)
			act = append(act, active{end: iv.end, vreg: iv.vreg, reg: r})
			continue
		}
		// Spill the interval that lives longest (classic furthest-end
		// heuristic).
		far := -1
		for i, a := range act {
			if far < 0 || a.end > act[far].end {
				far = i
			}
		}
		if far >= 0 && act[far].end > iv.end {
			locs[iv.vreg] = Reg(act[far].reg)
			locs[act[far].vreg] = Spill(spillSlot())
			act[far] = active{end: iv.end, vreg: iv.vreg, reg: locs[iv.vreg].Idx}
		} else {
			locs[iv.vreg] = Spill(spillSlot())
		}
	}
	return locs, spills
}

// finalize rewrites vcode to machine instructions with allocated locations
// and absolute branch targets (base is this function's offset in the
// module).
func (fc *fnCompiler) finalize(locs []Loc, base int) ([]Instr, []Loc, error) {
	loc := func(o vop) Loc {
		switch {
		case o.v >= 0:
			return locs[o.v]
		case o.c >= 0:
			return Const(o.c)
		default:
			return Loc{}
		}
	}
	dloc := func(v int) Loc {
		if v < 0 {
			return Loc{}
		}
		return locs[v]
	}
	code := make([]Instr, len(fc.code))
	for i, in := range fc.code {
		out := Instr{
			Op: in.op, Alu: in.alu,
			Dst: dloc(in.dst), A: loc(in.a), B: loc(in.b), C: loc(in.cc),
			Imm: in.imm, LoadTy: in.loadTy, Target: in.target,
		}
		if in.args != nil {
			out.Args = make([]Loc, len(in.args))
			for j, v := range in.args {
				out.Args[j] = loc(v)
			}
		}
		switch in.op {
		case OBrz, OJmp:
			pos := fc.labels[in.target]
			if pos < 0 {
				return nil, nil, fmt.Errorf("risc: unplaced label %d in %s", in.target, fc.fn.Name)
			}
			out.Target = base + pos
		}
		code[i] = out
	}
	params := make([]Loc, len(fc.params))
	for i, v := range fc.params {
		params[i] = locs[v]
	}
	return code, params, nil
}
