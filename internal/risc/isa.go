// Package risc implements the MCC machine-code backend: a RISC-style
// target instruction set, a code generator from FIR with liveness analysis
// and linear-scan register allocation, and a machine simulator that
// executes the generated code against the runtime heap.
//
// The paper's primary runtime is native IA32 with an additional environment
// that "simulates RISC architectures" (§3); this package is that second
// environment. It matters for two reproduced behaviours: migration never
// ships machine code — the target machine recompiles the FIR (§4.2.2), and
// this backend makes that recompilation real, measurable work (experiment
// E1) — and heterogeneous clusters can mix interpreter nodes and RISC
// nodes because both backends share heap semantics through internal/ops.
package risc

import (
	"fmt"
	"strings"

	"repro/internal/fir"
	"repro/internal/heap"
)

// NumRegs is the number of general-purpose machine registers.
const NumRegs = 24

// LocKind distinguishes operand locations.
type LocKind uint8

const (
	// LocNone marks an absent operand.
	LocNone LocKind = iota
	// LocReg is a machine register r0..r23.
	LocReg
	// LocSpill is a stack-frame spill slot. Because FIR is CPS (every call
	// is a tail call) frames never nest, so one flat spill area serves the
	// whole machine.
	LocSpill
	// LocConst is an index into the module's constant pool. Literal
	// operands are materialized at compile time instead of through OLdi
	// instructions, so the simulator executes one instruction per FIR
	// operation on the hot path.
	LocConst
)

// Loc is an operand location assigned by the register allocator.
type Loc struct {
	Kind LocKind
	Idx  int
}

func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return fmt.Sprintf("r%d", l.Idx)
	case LocSpill:
		return fmt.Sprintf("[sp+%d]", l.Idx)
	case LocConst:
		return fmt.Sprintf("c%d", l.Idx)
	default:
		return "_"
	}
}

// Reg, Spill and Const are Loc constructors.
func Reg(i int) Loc   { return Loc{Kind: LocReg, Idx: i} }
func Spill(i int) Loc { return Loc{Kind: LocSpill, Idx: i} }
func Const(i int) Loc { return Loc{Kind: LocConst, Idx: i} }

// KindCheckSlow marks a parameter whose kind cannot be resolved to a
// single runtime tag at compile time; enter then runs ops.CheckKind.
const KindCheckSlow heap.Kind = 0xFF

// OpCode enumerates the machine instructions.
type OpCode uint8

const (
	// OLdi loads the immediate value Imm into Dst.
	OLdi OpCode = iota
	// OAlu applies the FIR operator Alu to operands A (and B, C for
	// ternary store) writing Dst. Heap operators trap through the pointer
	// table exactly as on the interpreter.
	OAlu
	// OMov copies A to Dst.
	OMov
	// OJmp jumps to absolute code index Target.
	OJmp
	// OBrz branches to Target when A is integer zero.
	OBrz
	// OCall is a tail call: the function value in A is invoked with Args.
	OCall
	// OHalt stops the machine with exit code A.
	OHalt
	// OExt invokes extern Target (index into the module's extern table)
	// with Args, writing the result to Dst.
	OExt
	// OSpec enters a speculation level and invokes the function value in A
	// with an implicit leading c=0 plus Args.
	OSpec
	// OCommit commits level A (ordinal) then invokes the function in B
	// with Args.
	OCommit
	// ORollbk rolls back level A passing c = B.
	ORollbk
	// OMigr migrates: Target is the label, A the target-string pointer, B
	// the offset, C the continuation function value, Args its arguments.
	OMigr
	// ONop does nothing (alignment/label padding).
	ONop
)

var opNames = map[OpCode]string{
	OLdi: "ldi", OAlu: "alu", OMov: "mov", OJmp: "jmp", OBrz: "brz",
	OCall: "call", OHalt: "halt", OExt: "ext", OSpec: "spec",
	OCommit: "commit", ORollbk: "rollbk", OMigr: "migr", ONop: "nop",
}

func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one machine instruction.
type Instr struct {
	Op      OpCode
	Alu     fir.Op     // for OAlu
	Dst     Loc        // result location
	A, B, C Loc        // operands
	Imm     heap.Value // for OLdi
	LoadTy  fir.Type   // declared result type for OAlu/load tag checks
	Target  int        // branch target, extern index, or migrate label
	Args    []Loc      // call/extern/speculation arguments
}

func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case OLdi:
		fmt.Fprintf(&b, " %s, %s", in.Dst, in.Imm)
	case OAlu:
		fmt.Fprintf(&b, ".%s %s", in.Alu, in.Dst)
		for _, o := range []Loc{in.A, in.B, in.C} {
			if o.Kind != LocNone {
				fmt.Fprintf(&b, ", %s", o)
			}
		}
	case OMov:
		fmt.Fprintf(&b, " %s, %s", in.Dst, in.A)
	case OJmp:
		fmt.Fprintf(&b, " @%d", in.Target)
	case OBrz:
		fmt.Fprintf(&b, " %s, @%d", in.A, in.Target)
	case OCall, OSpec:
		fmt.Fprintf(&b, " %s", in.A)
		for _, a := range in.Args {
			fmt.Fprintf(&b, ", %s", a)
		}
	case OCommit:
		fmt.Fprintf(&b, " [%s] %s", in.A, in.B)
		for _, a := range in.Args {
			fmt.Fprintf(&b, ", %s", a)
		}
	case ORollbk:
		fmt.Fprintf(&b, " [%s, %s]", in.A, in.B)
	case OMigr:
		fmt.Fprintf(&b, " [%d, %s, %s] %s", in.Target, in.A, in.B, in.C)
		for _, a := range in.Args {
			fmt.Fprintf(&b, ", %s", a)
		}
	case OHalt:
		fmt.Fprintf(&b, " %s", in.A)
	case OExt:
		fmt.Fprintf(&b, " %s, #%d", in.Dst, in.Target)
		for _, a := range in.Args {
			fmt.Fprintf(&b, ", %s", a)
		}
	}
	return b.String()
}

// Module is a compiled program: flat code, per-function entry points and
// parameter locations, the extern name table, and the spill-frame size.
type Module struct {
	Code []Instr
	// Entry is the code index of the program entry function.
	Entry int
	// FnEntry maps FIR function-table indices to code indices; the
	// function table order is preserved so heap KFun values stay valid
	// across migration (§4.2.2).
	FnEntry []int
	// FnParams gives each function's parameter locations; calls write
	// argument values there before jumping.
	FnParams [][]Loc
	// FnParamKinds gives each parameter's expected runtime tag, resolved
	// from the FIR types at compile time so the per-call dynamic check is
	// a tag comparison instead of a type translation. The sentinel
	// KindCheckSlow forces the full ops.CheckKind path.
	FnParamKinds [][]heap.Kind
	// FnName mirrors the FIR function names for diagnostics.
	FnName []string
	// Externs is the extern name table referenced by OExt.Target.
	Externs []string
	// Consts is the constant pool referenced by LocConst operands.
	Consts []heap.Value
	// SpillSlots is the spill-frame size in words.
	SpillSlots int
}

// Disassemble renders the module as assembly text, used by `mcc -emit asm`.
func (m *Module) Disassemble() string {
	entryOf := make(map[int]string)
	for i, e := range m.FnEntry {
		entryOf[e] = m.FnName[i]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; module: %d instructions, %d spill slots, entry @%d\n", len(m.Code), m.SpillSlots, m.Entry)
	for i, in := range m.Code {
		if name, ok := entryOf[i]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %4d  %s\n", i, in)
	}
	return b.String()
}
