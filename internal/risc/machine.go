package risc

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/fir"
	"repro/internal/gc"
	"repro/internal/heap"
	"repro/internal/ops"
	"repro/internal/rt"
	"repro/internal/spec"
)

// Errors returned by the machine.
var (
	ErrFuelExhausted = errors.New("risc: fuel exhausted")
	ErrNotRunning    = errors.New("risc: machine is not running")
	ErrNoMigration   = errors.New("risc: no migration handler installed")
)

// Config configures a machine instance. It mirrors vm.Config so the two
// backends are interchangeable.
type Config struct {
	Heap            heap.Config
	Collector       heap.Collector
	Stdout          io.Writer
	Fuel            uint64
	TrapSpeculation bool
	Name            string
	Args            []int64
	Seed            int64
}

// Machine executes a compiled Module against the runtime heap. It
// implements rt.Runtime, so externals and migration behave exactly as on
// the interpreter backend.
type Machine struct {
	name    string
	prog    *fir.Program
	mod     *Module
	h       *heap.Heap
	mgr     *spec.Manager
	externs rt.Registry
	migrate rt.MigrateHandler

	regs    [NumRegs]heap.Value
	spill   []heap.Value
	extVals []rt.Extern // extern table resolved from mod.Externs at Start
	pc      int
	status  rt.Status
	halt    int64
	err     error

	stdout io.Writer
	fuel   uint64
	fuelOn bool
	steps  uint64
	pins   []heap.Value
	args   []int64
	rng    uint64
	yield  bool

	// Hot-path scratch, reused across instructions. Callees never retain
	// these slices (rt.ExternFn documents the contract); the speculation
	// manager and migration handlers get fresh copies.
	alubuf  [3]heap.Value
	argbuf  []heap.Value
	callbuf []heap.Value

	trapSpec bool
}

// NewMachine creates a machine for a program, compiling it if mod is nil.
// The program must already be type-checked when a precompiled module is
// supplied.
func NewMachine(prog *fir.Program, mod *Module, cfg Config) (*Machine, error) {
	h := heap.New(cfg.Heap)
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	m := &Machine{
		name:     cfg.Name,
		prog:     prog,
		mod:      mod,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
	}
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range m.regs {
			yield(v)
		}
		for _, v := range m.spill {
			yield(v)
		}
		for _, v := range m.pins {
			yield(v)
		}
	})
	for name, e := range rt.StdExterns() {
		m.externs[name] = e
	}
	return m, nil
}

// ResumeMachine builds a machine around a restored heap and speculation
// continuation stack — the unpack path when the target node runs the RISC
// backend.
func ResumeMachine(prog *fir.Program, mod *Module, h *heap.Heap, conts []spec.Continuation, cfg Config) (*Machine, error) {
	out := cfg.Stdout
	if out == nil {
		out = io.Discard
	}
	if cfg.Collector != nil {
		h.SetCollector(cfg.Collector)
	} else {
		h.SetCollector(gc.New())
	}
	m := &Machine{
		name:     cfg.Name,
		prog:     prog,
		mod:      mod,
		h:        h,
		mgr:      spec.New(h),
		externs:  make(rt.Registry),
		stdout:   out,
		fuel:     cfg.Fuel,
		fuelOn:   cfg.Fuel > 0,
		args:     cfg.Args,
		rng:      uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		trapSpec: cfg.TrapSpeculation,
	}
	if err := m.mgr.RestoreStack(conts); err != nil {
		return nil, err
	}
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range m.regs {
			yield(v)
		}
		for _, v := range m.spill {
			yield(v)
		}
		for _, v := range m.pins {
			yield(v)
		}
	})
	for name, e := range rt.StdExterns() {
		m.externs[name] = e
	}
	return m, nil
}

// rt.Runtime implementation.

var _ rt.Runtime = (*Machine)(nil)

// Name identifies the machine's process.
func (m *Machine) Name() string { return m.name }

// Program returns the FIR program the module was compiled from.
func (m *Machine) Program() *fir.Program { return m.prog }

// Heap returns the machine heap.
func (m *Machine) Heap() *heap.Heap { return m.h }

// Spec returns the speculation manager.
func (m *Machine) Spec() *spec.Manager { return m.mgr }

// Stdout is the sink for print externs.
func (m *Machine) Stdout() io.Writer { return m.stdout }

// Pin registers a temporary GC root, cleared after each extern.
func (m *Machine) Pin(v heap.Value) { m.pins = append(m.pins, v) }

// Arg returns the i-th process argument.
func (m *Machine) Arg(i int64) int64 {
	if i < 0 || i >= int64(len(m.args)) {
		return 0
	}
	return m.args[i]
}

// NArgs returns the process argument count.
func (m *Machine) NArgs() int64 { return int64(len(m.args)) }

// Rand returns a deterministic pseudo-random integer in [0, n).
func (m *Machine) Rand(n int64) int64 {
	if n <= 0 {
		return 0
	}
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	v := (m.rng * 2685821657736338717) >> 1
	return int64(v) % n
}

// Module returns the compiled module.
func (m *Machine) Module() *Module { return m.mod }

// Status returns the lifecycle state.
func (m *Machine) Status() rt.Status { return m.status }

// HaltCode returns the exit code after halting.
func (m *Machine) HaltCode() int64 { return m.halt }

// Err returns the terminal error after failure.
func (m *Machine) Err() error { return m.err }

// Steps returns the executed instruction count.
func (m *Machine) Steps() uint64 { return m.steps }

// SetMigrateHandler installs the migration implementation.
func (m *Machine) SetMigrateHandler(h rt.MigrateHandler) { m.migrate = h }

// RegisterExtern adds or replaces an external function; call before Start.
func (m *Machine) RegisterExtern(name string, sig fir.ExternSig, fn rt.ExternFn) {
	m.externs[name] = rt.Extern{Sig: sig, Fn: fn}
	if m.extVals != nil {
		for i, n := range m.mod.Externs {
			if n == name {
				m.extVals[i] = m.externs[name]
			}
		}
	}
}

// resolveExterns builds the extern table OExt dispatches through, keeping
// the per-call map lookup off the hot path. Missing externs stay nil and
// trap at the call site, matching the lazy-lookup behaviour.
func (m *Machine) resolveExterns() {
	m.extVals = make([]rt.Extern, len(m.mod.Externs))
	for i, n := range m.mod.Externs {
		if e, ok := m.externs[n]; ok {
			m.extVals[i] = e
		}
	}
}

// ExternSigs returns the signature registry for type checking.
func (m *Machine) ExternSigs() map[string]fir.ExternSig { return m.externs.Sigs() }

// Start type-checks the program, compiles it if necessary, and positions
// the machine at the entry point.
func (m *Machine) Start() error {
	if m.status != rt.StatusReady {
		return fmt.Errorf("risc: Start on a %s machine", m.status)
	}
	if err := fir.Check(m.prog, m.ExternSigs()); err != nil {
		return err
	}
	if m.mod == nil {
		mod, err := Compile(m.prog)
		if err != nil {
			return err
		}
		m.mod = mod
	}
	m.spill = make([]heap.Value, m.mod.SpillSlots)
	m.resolveExterns()
	m.pc = m.mod.Entry
	m.status = rt.StatusRunning
	return nil
}

// StartAt compiles the module if necessary and positions the machine to
// invoke function fnIdx with args — the unpack resume path.
func (m *Machine) StartAt(fnIdx int64, args []heap.Value) error {
	if m.status != rt.StatusReady {
		return fmt.Errorf("risc: StartAt on a %s machine", m.status)
	}
	// No type check here: the caller has already verified the program (or
	// deliberately skipped verification under the trusted binary protocol).
	if m.mod == nil {
		mod, err := Compile(m.prog)
		if err != nil {
			return err
		}
		m.mod = mod
	}
	m.spill = make([]heap.Value, m.mod.SpillSlots)
	m.resolveExterns()
	m.status = rt.StatusRunning
	if err := m.enter(fnIdx, args); err != nil {
		m.status = rt.StatusFailed
		m.err = err
		return err
	}
	return nil
}

// RestoreSpec reinstalls a speculation continuation stack after the heap
// was rebuilt from a snapshot (heterogeneous unpack).
func (m *Machine) RestoreSpec(conts []spec.Continuation) error {
	return m.mgr.RestoreStack(conts)
}

// read fetches a value from an operand location.
func (m *Machine) read(l Loc) heap.Value {
	switch l.Kind {
	case LocReg:
		return m.regs[l.Idx]
	case LocSpill:
		return m.spill[l.Idx]
	case LocConst:
		return m.mod.Consts[l.Idx]
	default:
		return heap.Value{}
	}
}

// write stores a value to a destination location.
func (m *Machine) write(l Loc, v heap.Value) {
	switch l.Kind {
	case LocReg:
		m.regs[l.Idx] = v
	case LocSpill:
		m.spill[l.Idx] = v
	}
}

// enter performs the tail-call convention: argument values are written
// into the callee's parameter locations and the pc moves to its entry.
// The dynamic argument check compares the compile-resolved runtime tags
// (Module.FnParamKinds); only a mismatch pays for the full type check and
// its error formatting.
func (m *Machine) enter(fnIdx int64, args []heap.Value) error {
	if fnIdx < 0 || fnIdx >= int64(len(m.mod.FnEntry)) {
		return fmt.Errorf("risc: function index %d out of range", fnIdx)
	}
	params := m.mod.FnParams[fnIdx]
	if len(args) != len(params) {
		return fmt.Errorf("risc: %s takes %d arguments, given %d", m.mod.FnName[fnIdx], len(params), len(args))
	}
	kinds := m.mod.FnParamKinds[fnIdx]
	for i, a := range args {
		if a.Kind != kinds[i] {
			fn, err := m.prog.FuncByIndex(int(fnIdx))
			if err != nil {
				return err
			}
			if err := ops.CheckKind(a, fn.Params[i].Type); err != nil {
				return fmt.Errorf("risc: %s argument %d: %w", fn.Name, i, err)
			}
		}
	}
	// Two-phase write: arguments may come from locations about to be
	// overwritten (caller registers double as callee parameters).
	for i, a := range args {
		m.write(params[i], a)
	}
	m.pc = m.mod.FnEntry[fnIdx]
	return nil
}

// gather reads an operand list into the reused argument scratch buffer.
// The result is valid until the next gather; callees must not retain it.
func (m *Machine) gather(locs []Loc) []heap.Value {
	out := m.argbuf[:0]
	for _, l := range locs {
		out = append(out, m.read(l))
	}
	m.argbuf = out
	return out
}

// gatherFresh reads an operand list into a fresh slice for callees that
// retain their arguments (speculation continuations, migration handlers).
func (m *Machine) gatherFresh(locs []Loc) []heap.Value {
	out := make([]heap.Value, len(locs))
	for i, l := range locs {
		out[i] = m.read(l)
	}
	return out
}

// Run executes until the machine leaves StatusRunning.
func (m *Machine) Run() (rt.Status, error) { return m.RunSteps(0) }

// Yield requests that the current bounded RunSteps quantum end after the
// active instruction; see vm.Process.Yield.
func (m *Machine) Yield() { m.yield = true }

// RunSteps executes at most n instructions (0 = unlimited).
func (m *Machine) RunSteps(n uint64) (rt.Status, error) {
	if m.status != rt.StatusRunning {
		return m.status, fmt.Errorf("%w (%s)", ErrNotRunning, m.status)
	}
	for i := uint64(0); n == 0 || i < n; i++ {
		if m.fuelOn {
			if m.fuel == 0 {
				m.status = rt.StatusFailed
				m.err = ErrFuelExhausted
				return m.status, m.err
			}
			m.fuel--
		}
		m.steps++
		if err := m.step(); err != nil {
			if m.trap(err) {
				continue
			}
			m.status = rt.StatusFailed
			m.err = err
			return m.status, err
		}
		if m.status != rt.StatusRunning {
			return m.status, nil
		}
		if m.yield {
			m.yield = false
			if n != 0 {
				return m.status, nil
			}
		}
	}
	return m.status, nil
}

// TrapC mirrors vm.TrapC: the c value used for error-triggered rollbacks.
const TrapC = 2

func (m *Machine) trap(err error) bool {
	if !m.trapSpec || m.mgr.Depth() == 0 {
		return false
	}
	cont, rbErr := m.mgr.Rollback(m.mgr.Depth())
	if rbErr != nil {
		return false
	}
	args := append([]heap.Value{heap.IntVal(TrapC)}, cont.Args...)
	return m.enter(cont.FnIndex, args) == nil
}

func (m *Machine) step() error {
	if m.pc < 0 || m.pc >= len(m.mod.Code) {
		return fmt.Errorf("risc: pc %d outside code [0,%d)", m.pc, len(m.mod.Code))
	}
	in := &m.mod.Code[m.pc]
	switch in.Op {
	case ONop:
		m.pc++
	case OLdi:
		m.write(in.Dst, in.Imm)
		m.pc++
	case OMov:
		m.write(in.Dst, m.read(in.A))
		m.pc++
	case OAlu:
		n := 0
		if in.A.Kind != LocNone {
			m.alubuf[0] = m.read(in.A)
			n = 1
			if in.B.Kind != LocNone {
				m.alubuf[1] = m.read(in.B)
				n = 2
				if in.C.Kind != LocNone {
					m.alubuf[2] = m.read(in.C)
					n = 3
				}
			}
		}
		v, err := ops.Eval(m.h, in.Alu, m.alubuf[:n], in.LoadTy)
		if err != nil {
			return err
		}
		m.write(in.Dst, v)
		m.pc++
	case OJmp:
		m.pc = in.Target
	case OBrz:
		c := m.read(in.A)
		if c.Kind != heap.KInt {
			return fmt.Errorf("risc: brz operand is %s, want int", c.Kind)
		}
		if c.I == 0 {
			m.pc = in.Target
		} else {
			m.pc++
		}
	case OCall:
		fv := m.read(in.A)
		if fv.Kind != heap.KFun {
			return fmt.Errorf("risc: call target is %s, want fun", fv)
		}
		return m.enter(fv.I, m.gather(in.Args))
	case OHalt:
		c := m.read(in.A)
		if c.Kind != heap.KInt {
			return fmt.Errorf("risc: halt code is %s, want int", c.Kind)
		}
		m.status = rt.StatusHalted
		m.halt = c.I
	case OExt:
		ext := &m.extVals[in.Target]
		if ext.Fn == nil {
			return fmt.Errorf("risc: unknown extern %q", m.mod.Externs[in.Target])
		}
		v, err := ext.Fn(m, m.gather(in.Args))
		m.pins = m.pins[:0]
		if err != nil {
			return err
		}
		if err := ops.CheckKind(v, ext.Sig.Result); err != nil {
			return fmt.Errorf("risc: extern %q result: %w", m.mod.Externs[in.Target], err)
		}
		m.write(in.Dst, v)
		m.pc++
	case OSpec:
		fv := m.read(in.A)
		if fv.Kind != heap.KFun {
			return fmt.Errorf("risc: speculate target is %s, want fun", fv)
		}
		saved := m.gatherFresh(in.Args)
		m.mgr.Enter(spec.Continuation{FnIndex: fv.I, Args: saved})
		call := append(m.callbuf[:0], heap.IntVal(0))
		call = append(call, saved...)
		m.callbuf = call
		return m.enter(fv.I, call)
	case OCommit:
		lv := m.read(in.A)
		fv := m.read(in.B)
		if lv.Kind != heap.KInt || fv.Kind != heap.KFun {
			return fmt.Errorf("risc: commit operands must be (int, fun)")
		}
		args := m.gather(in.Args)
		if err := m.mgr.Commit(int(lv.I)); err != nil {
			return err
		}
		return m.enter(fv.I, args)
	case ORollbk:
		lv := m.read(in.A)
		cv := m.read(in.B)
		if lv.Kind != heap.KInt || cv.Kind != heap.KInt {
			return fmt.Errorf("risc: rollback operands must be int")
		}
		cont, err := m.mgr.Rollback(int(lv.I))
		if err != nil {
			return err
		}
		call := append(m.callbuf[:0], cv)
		call = append(call, cont.Args...)
		m.callbuf = call
		return m.enter(cont.FnIndex, call)
	case OMigr:
		tp := m.read(in.A)
		ov := m.read(in.B)
		fv := m.read(in.C)
		if tp.Kind != heap.KPtr || ov.Kind != heap.KInt || fv.Kind != heap.KFun {
			return fmt.Errorf("risc: migrate operands must be (ptr, int, fun)")
		}
		eff := tp
		eff.Off += ov.I
		target, err := m.h.LoadString(eff)
		if err != nil {
			return err
		}
		// Migration handlers may retain the arguments (pack, remote
		// handoff): fresh slice, never scratch.
		args := m.gatherFresh(in.Args)
		if m.migrate == nil {
			return ErrNoMigration
		}
		outcome, err := m.migrate(&rt.MigrationRequest{
			Rt: m, Label: in.Target, Target: target, FnIndex: fv.I, Args: args,
		})
		m.pins = m.pins[:0]
		if err != nil {
			outcome = rt.OutcomeContinueLocal
		}
		switch outcome {
		case rt.OutcomeMigrated:
			m.status = rt.StatusMigrated
		case rt.OutcomeSuspended:
			m.status = rt.StatusSuspended
		default:
			return m.enter(fv.I, args)
		}
	default:
		return fmt.Errorf("risc: unknown opcode %v", in.Op)
	}
	return nil
}
