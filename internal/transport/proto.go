// Package transport is the distributed cluster link layer: it lets the
// grid application, the speculation/MSG_ROLL semantics and checkpoint
// recovery of the single-process simulation run unchanged across OS
// processes connected by TCP.
//
// Topology: a star. Every worker process holds one connection to the
// coordinator Hub; the Hub maps node IDs to connections, relays border
// messages between workers, buffers them keyed by (dst, src, tag) so a
// worker that (re)connects — including a resurrected incarnation of a
// failed node — replays exactly the messages an in-process mailbox would
// still hold, broadcasts rollback epochs (the paper's MSG_ROLL) when a
// node fails, serves the shared checkpoint store over RPC (the paper's
// NFS mount), and routes cross-process migrate("node://K") handoffs.
//
// Delivery is keyed and idempotent end to end: re-sending a (src, dst,
// tag) key overwrites with identical content (the computation is
// deterministic), so replays after reconnects, duplicated frames and
// rollback-driven retries all converge to the same grid result as the
// in-process engine — bit-identical to the sequential reference.
//
// Frames use the shared internal/frame codec (also spoken by the
// migration server): a 4-byte length prefix, then a 1-byte frame type and
// a big-endian payload.
package transport

import (
	"fmt"
	"math"

	"repro/internal/heap"
	"repro/internal/msg"
	"repro/internal/rt"
)

// Frame types. Direction is noted as worker→hub (W→H) or hub→worker.
const (
	fHello   = 'H' // W→H: node, resurrect — join (or rejoin) as this node
	fWelcome = 'W' // H→W: epoch — hello ack; buffered messages follow
	fMsg     = 'M' // both: src, dst, batch — border-message delivery
	fRoll    = 'R' // H→W: epoch — a node failed; observe MSG_ROLL once
	fFail    = 'F' // H→W: node — you are the failed node; die now
	fGC      = 'G' // W→H: node, below — prune the hub buffer for node
	fOwn     = 'O' // W→H: node — this connection now hosts node too
	fPut     = 'P' // W→H: id, name, data — checkpoint store write
	fGet     = 'Q' // W→H: id, name — checkpoint store read
	fList    = 'L' // W→H: id — checkpoint store listing
	fAck     = 'A' // both: id, err — Put/adoption acknowledgement
	fData    = 'D' // H→W: id, err, data — Get reply
	fNames   = 'N' // H→W: id, err, names — List reply
	fExit    = 'X' // W→H: node's final state — the run result
	fMigrate = 'V' // both: id, src, dst, seen, image — node://K handoff

	// Chunked store streaming (content-hash dedup; see chunk.go).
	fPutC    = 'p' // W→H: id, name, total, hashes — chunked put announce
	fNeed    = 'n' // H→W: id, err, indices — chunks the hub lacks
	fChunk   = 'k' // W→H: id, index, data — one put chunk
	fManif   = 'm' // H→W: id, err, total, hashes — chunked get manifest
	fHashGet = 'h' // W→H: id, hash — fetch one chunk by content hash
)

// enc is a tiny append-only big-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v byte) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = append(e.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (e *enc) i64(v int64) {
	u := uint64(v)
	e.b = append(e.b, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}
func (e *enc) blob(b []byte) { e.u32(uint32(len(b))); e.b = append(e.b, b...) }
func (e *enc) str(s string)  { e.blob([]byte(s)) }

// val encodes a scalar heap word. Only ints and floats cross the
// interconnect (pointers are process-local); msg_send enforces this, and
// the encoder double-checks.
func (e *enc) val(v heap.Value) error {
	switch v.Kind {
	case heap.KInt:
		e.u8(byte(heap.KInt))
		e.i64(v.I)
	case heap.KFloat:
		e.u8(byte(heap.KFloat))
		e.i64(int64(math.Float64bits(v.F)))
	default:
		return fmt.Errorf("transport: %s word cannot cross the interconnect", v.Kind)
	}
	return nil
}

// dec is the matching cursor-and-sticky-error decoder.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("transport: truncated frame at offset %d", d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := uint32(d.b[d.off])<<24 | uint32(d.b[d.off+1])<<16 | uint32(d.b[d.off+2])<<8 | uint32(d.b[d.off+3])
	d.off += 4
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	var u uint64
	for i := 0; i < 8; i++ {
		u = u<<8 | uint64(d.b[d.off+i])
	}
	d.off += 8
	return int64(u)
}

func (d *dec) blob() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+int(n)]
	d.off += int(n)
	return v
}

func (d *dec) str() string { return string(d.blob()) }

func (d *dec) val() heap.Value {
	kind := heap.Kind(d.u8())
	bits := d.i64()
	switch kind {
	case heap.KInt:
		return heap.IntVal(bits)
	case heap.KFloat:
		return heap.Value{Kind: heap.KFloat, F: math.Float64frombits(uint64(bits))}
	default:
		if d.err == nil {
			d.err = fmt.Errorf("transport: bad wire value kind %d", kind)
		}
		return heap.Value{}
	}
}

// encodeMsg builds an fMsg frame: src, dst, then the tagged payloads.
func encodeMsg(src, dst int64, batch []msg.Batched) ([]byte, error) {
	e := &enc{b: make([]byte, 0, 32+len(batch)*32)}
	e.u8(fMsg)
	e.i64(src)
	e.i64(dst)
	e.u32(uint32(len(batch)))
	for _, b := range batch {
		e.i64(b.Tag)
		e.u32(uint32(len(b.Words)))
		for _, w := range b.Words {
			if err := e.val(w); err != nil {
				return nil, err
			}
		}
	}
	return e.b, nil
}

// decodeMsg parses an fMsg frame (payload after the type byte is NOT
// stripped: pass the full frame).
func decodeMsg(b []byte) (src, dst int64, batch []msg.Batched, err error) {
	d := &dec{b: b, off: 1}
	src = d.i64()
	dst = d.i64()
	n := d.u32()
	if d.err == nil && int(n) > len(b) { // cheap sanity bound before allocating
		d.err = fmt.Errorf("transport: message count %d exceeds frame", n)
	}
	if d.err == nil {
		batch = make([]msg.Batched, 0, n)
		for i := uint32(0); i < n && d.err == nil; i++ {
			tag := d.i64()
			nw := d.u32()
			if d.err == nil && int(nw) > len(b) {
				d.err = fmt.Errorf("transport: word count %d exceeds frame", nw)
				break
			}
			words := make([]heap.Value, 0, nw)
			for j := uint32(0); j < nw; j++ {
				words = append(words, d.val())
			}
			batch = append(batch, msg.Batched{Tag: tag, Words: words})
		}
	}
	return src, dst, batch, d.err
}

// encodeHello carries the joining node plus whether this incarnation is a
// resurrection from checkpoint. Only a resurrection may clear the hub's
// failed mark: a zombie of the old incarnation rejoining after a network
// blip must be re-killed, not re-admitted, or the node would briefly have
// two live processes.
func encodeHello(node int64, resurrect bool) []byte {
	e := &enc{b: make([]byte, 0, 10)}
	e.u8(fHello)
	e.i64(node)
	if resurrect {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.b
}

func decodeHello(b []byte) (node int64, resurrect bool, err error) {
	d := &dec{b: b, off: 1}
	node = d.i64()
	resurrect = d.u8() != 0
	return node, resurrect, d.err
}

func encodeNode(typ byte, node int64) []byte {
	e := &enc{b: make([]byte, 0, 9)}
	e.u8(typ)
	e.i64(node)
	return e.b
}

func decodeNode(b []byte) (int64, error) {
	d := &dec{b: b, off: 1}
	n := d.i64()
	return n, d.err
}

func encodeGC(node, below int64) []byte {
	e := &enc{b: make([]byte, 0, 17)}
	e.u8(fGC)
	e.i64(node)
	e.i64(below)
	return e.b
}

func decodeGC(b []byte) (node, below int64, err error) {
	d := &dec{b: b, off: 1}
	node = d.i64()
	below = d.i64()
	return node, below, d.err
}

func encodePut(id uint32, name string, data []byte) []byte {
	e := &enc{b: make([]byte, 0, 16+len(name)+len(data))}
	e.u8(fPut)
	e.u32(id)
	e.str(name)
	e.blob(data)
	return e.b
}

func decodePut(b []byte) (id uint32, name string, data []byte, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	name = d.str()
	data = d.blob()
	return id, name, data, d.err
}

// encodeGet carries a full flag: a worker that failed to assemble a
// chunked manifest re-requests the payload as one plain frame.
func encodeGet(id uint32, name string, full bool) []byte {
	e := &enc{b: make([]byte, 0, 13+len(name))}
	e.u8(fGet)
	e.u32(id)
	e.str(name)
	if full {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.b
}

func decodeGet(b []byte) (id uint32, name string, full bool, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	name = d.str()
	full = d.u8() != 0
	return id, name, full, d.err
}

func encodeList(id uint32) []byte {
	e := &enc{}
	e.u8(fList)
	e.u32(id)
	return e.b
}

func decodeList(b []byte) (uint32, error) {
	d := &dec{b: b, off: 1}
	id := d.u32()
	return id, d.err
}

func encodeAck(id uint32, errStr string) []byte {
	e := &enc{}
	e.u8(fAck)
	e.u32(id)
	e.str(errStr)
	return e.b
}

func decodeAck(b []byte) (id uint32, errStr string, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	errStr = d.str()
	return id, errStr, d.err
}

func encodeData(id uint32, errStr string, data []byte) []byte {
	e := &enc{b: make([]byte, 0, 16+len(errStr)+len(data))}
	e.u8(fData)
	e.u32(id)
	e.str(errStr)
	e.blob(data)
	return e.b
}

func decodeData(b []byte) (id uint32, errStr string, data []byte, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	errStr = d.str()
	data = d.blob()
	return id, errStr, data, d.err
}

func encodeNames(id uint32, errStr string, names []string) []byte {
	e := &enc{}
	e.u8(fNames)
	e.u32(id)
	e.str(errStr)
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
	}
	return e.b
}

func decodeNames(b []byte) (id uint32, errStr string, names []string, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	errStr = d.str()
	n := d.u32()
	if d.err == nil && int(n) > len(b) {
		d.err = fmt.Errorf("transport: name count %d exceeds frame", n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		names = append(names, d.str())
	}
	return id, errStr, names, d.err
}

func encodePutC(id uint32, name string, total uint32, hashes []chunkHash) []byte {
	e := &enc{b: make([]byte, 0, 24+len(name)+len(hashes)*32)}
	e.u8(fPutC)
	e.u32(id)
	e.str(name)
	e.u32(total)
	e.u32(uint32(len(hashes)))
	for _, h := range hashes {
		e.b = append(e.b, h[:]...)
	}
	return e.b
}

func decodePutC(b []byte) (id uint32, name string, total uint32, hashes []chunkHash, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	name = d.str()
	total = d.u32()
	n := d.u32()
	if d.err == nil && int(n)*32 > len(b) {
		d.err = fmt.Errorf("transport: hash count %d exceeds frame", n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		if d.off+32 > len(d.b) {
			d.fail()
			break
		}
		var h chunkHash
		copy(h[:], d.b[d.off:])
		d.off += 32
		hashes = append(hashes, h)
	}
	return id, name, total, hashes, d.err
}

func encodeNeed(id uint32, errStr string, indices []uint32) []byte {
	e := &enc{b: make([]byte, 0, 16+len(errStr)+len(indices)*4)}
	e.u8(fNeed)
	e.u32(id)
	e.str(errStr)
	e.u32(uint32(len(indices)))
	for _, i := range indices {
		e.u32(i)
	}
	return e.b
}

func decodeNeed(b []byte) (id uint32, errStr string, indices []uint32, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	errStr = d.str()
	n := d.u32()
	if d.err == nil && int(n)*4 > len(b) {
		d.err = fmt.Errorf("transport: index count %d exceeds frame", n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		indices = append(indices, d.u32())
	}
	return id, errStr, indices, d.err
}

func encodeChunk(id, index uint32, data []byte) []byte {
	e := &enc{b: make([]byte, 0, 16+len(data))}
	e.u8(fChunk)
	e.u32(id)
	e.u32(index)
	e.blob(data)
	return e.b
}

func decodeChunk(b []byte) (id, index uint32, data []byte, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	index = d.u32()
	data = d.blob()
	return id, index, data, d.err
}

func encodeManif(id uint32, errStr string, total uint32, hashes []chunkHash) []byte {
	e := &enc{b: make([]byte, 0, 20+len(errStr)+len(hashes)*32)}
	e.u8(fManif)
	e.u32(id)
	e.str(errStr)
	e.u32(total)
	e.u32(uint32(len(hashes)))
	for _, h := range hashes {
		e.b = append(e.b, h[:]...)
	}
	return e.b
}

func decodeManif(b []byte) (id uint32, errStr string, total uint32, hashes []chunkHash, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	errStr = d.str()
	total = d.u32()
	n := d.u32()
	if d.err == nil && int(n)*32 > len(b) {
		d.err = fmt.Errorf("transport: hash count %d exceeds frame", n)
	}
	for i := uint32(0); i < n && d.err == nil; i++ {
		if d.off+32 > len(d.b) {
			d.fail()
			break
		}
		var h chunkHash
		copy(h[:], d.b[d.off:])
		d.off += 32
		hashes = append(hashes, h)
	}
	return id, errStr, total, hashes, d.err
}

func encodeHashGet(id uint32, h chunkHash) []byte {
	e := &enc{b: make([]byte, 0, 37)}
	e.u8(fHashGet)
	e.u32(id)
	e.b = append(e.b, h[:]...)
	return e.b
}

func decodeHashGet(b []byte) (id uint32, h chunkHash, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	if d.err == nil && d.off+32 > len(d.b) {
		d.fail()
	}
	if d.err == nil {
		copy(h[:], d.b[d.off:])
		d.off += 32
	}
	return id, h, d.err
}

func encodeEpoch(typ byte, epoch int64) []byte {
	e := &enc{}
	e.u8(typ)
	e.i64(epoch)
	return e.b
}

func decodeEpoch(b []byte) (int64, error) {
	d := &dec{b: b, off: 1}
	v := d.i64()
	return v, d.err
}

func encodeExit(r Result) []byte {
	e := &enc{b: make([]byte, 0, 64+len(r.Err))}
	e.u8(fExit)
	e.i64(r.Node)
	e.i64(int64(r.Status))
	e.i64(r.Halt)
	e.i64(int64(r.Steps))
	e.i64(int64(r.Rolls))
	e.str(r.Err)
	return e.b
}

func decodeExit(b []byte) (Result, error) {
	d := &dec{b: b, off: 1}
	r := Result{
		Node:   d.i64(),
		Status: rt.Status(d.i64()),
		Halt:   d.i64(),
		Steps:  uint64(d.i64()),
		Rolls:  uint64(d.i64()),
		Err:    d.str(),
	}
	return r, d.err
}

func encodeMigrate(id uint32, src, dst, seen int64, image []byte) []byte {
	e := &enc{b: make([]byte, 0, 40+len(image))}
	e.u8(fMigrate)
	e.u32(id)
	e.i64(src)
	e.i64(dst)
	e.i64(seen)
	e.blob(image)
	return e.b
}

func decodeMigrate(b []byte) (id uint32, src, dst, seen int64, image []byte, err error) {
	d := &dec{b: b, off: 1}
	id = d.u32()
	src = d.i64()
	dst = d.i64()
	seen = d.i64()
	image = d.blob()
	return id, src, dst, seen, image, d.err
}
