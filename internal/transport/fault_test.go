package transport

import (
	"reflect"
	"testing"

	"repro/internal/heap"
	"repro/internal/msg"
)

// recordConn is a fake FrameConn that records every written frame.
type recordConn struct {
	frames [][]byte
	closed bool
}

func (r *recordConn) ReadFrame() ([]byte, error) { return nil, nil }
func (r *recordConn) WriteFrame(b []byte) error {
	r.frames = append(r.frames, b)
	return nil
}
func (r *recordConn) Close() error {
	r.closed = true
	return nil
}

func msgFrame(t *testing.T, src, dst, tag, word int64) []byte {
	t.Helper()
	b, err := encodeMsg(src, dst, []msg.Batched{{Tag: tag, Words: []heap.Value{heap.IntVal(word)}}})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func frameTags(t *testing.T, frames [][]byte) []int64 {
	t.Helper()
	var tags []int64
	for _, f := range frames {
		_, _, batch, err := decodeMsg(f)
		if err != nil {
			t.Fatal(err)
		}
		tags = append(tags, batch[0].Tag)
	}
	return tags
}

// TestFaultReorderWindowFlushesOnClose: frames still sitting in the
// reorder window when the connection closes (a scripted worker kill
// tears the link down mid-window) are flushed into the inner connection
// rather than silently lost.
func TestFaultReorderWindowFlushesOnClose(t *testing.T) {
	spec := &FaultSpec{ReorderWindow: 3}
	rec := &recordConn{}
	fc := spec.Wrap(rec)

	// Two message writes: fewer than the window, so nothing reaches the
	// inner connection yet.
	if err := fc.WriteFrame(msgFrame(t, 1, 2, 10, 100)); err != nil {
		t.Fatal(err)
	}
	if err := fc.WriteFrame(msgFrame(t, 1, 2, 11, 101)); err != nil {
		t.Fatal(err)
	}
	if len(rec.frames) != 0 {
		t.Fatalf("window leaked %d frames before close", len(rec.frames))
	}

	cl, ok := fc.(interface{ Close() error })
	if !ok {
		t.Fatal("wrapped conn does not implement Close")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if !rec.closed {
		t.Fatal("inner connection was not closed")
	}
	got := frameTags(t, rec.frames)
	// flushWindow emits in reverse write order.
	if want := []int64{11, 10}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flushed tags = %v, want %v", got, want)
	}
	if spec.Reordered() != 2 {
		t.Fatalf("Reordered() = %d, want 2", spec.Reordered())
	}
}

// TestFaultHoldFlushesOnClose: latency-skewed frames awaiting their
// release budget are flushed in send order when the link closes.
func TestFaultHoldFlushesOnClose(t *testing.T) {
	spec := &FaultSpec{
		// Withhold every frame for 10 subsequent writes — far more than
		// the test sends, so only Close can release them.
		Hold: func(src, dst, tag int64, occ int) int { return 10 },
	}
	rec := &recordConn{}
	fc := spec.Wrap(rec)
	for tag := int64(20); tag < 23; tag++ {
		if err := fc.WriteFrame(msgFrame(t, 1, 2, tag, tag*7)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.frames) != 0 {
		t.Fatalf("held frames leaked early: %d", len(rec.frames))
	}
	if err := fc.(interface{ Close() error }).Close(); err != nil {
		t.Fatal(err)
	}
	got := frameTags(t, rec.frames)
	if want := []int64{20, 21, 22}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flushed tags = %v, want %v", got, want)
	}
	if spec.Held() != 3 {
		t.Fatalf("Held() = %d, want 3", spec.Held())
	}
}

// TestFaultHoldReleasesByWriteBudget: a held frame re-enters the stream
// after N subsequent message writes — later than everything the sender
// emitted in between (the asymmetric-latency model).
func TestFaultHoldReleasesByWriteBudget(t *testing.T) {
	spec := &FaultSpec{
		Hold: func(src, dst, tag int64, occ int) int {
			if tag == 30 {
				return 2
			}
			return 0
		},
	}
	rec := &recordConn{}
	fc := spec.Wrap(rec)
	for tag := int64(30); tag < 34; tag++ {
		if err := fc.WriteFrame(msgFrame(t, 1, 2, tag, tag)); err != nil {
			t.Fatal(err)
		}
	}
	got := frameTags(t, rec.frames)
	// 30 is withheld for two writes: 31 passes (budget 2→1), 32 ages it
	// to 0 and it is released BEFORE 32 (it was sent first), then 33.
	if want := []int64{31, 30, 32, 33}; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order = %v, want %v", got, want)
	}
}

// TestFaultControlFrameFlushesHeld: any non-message frame (checkpoint
// put, GC, exit) flushes both the reorder window and held frames before
// itself, preserving the control frame's ordering guarantees.
func TestFaultControlFrameFlushesHeld(t *testing.T) {
	spec := &FaultSpec{
		ReorderWindow: 4,
		Hold: func(src, dst, tag int64, occ int) int {
			if tag == 40 {
				return 99
			}
			return 0
		},
	}
	rec := &recordConn{}
	fc := spec.Wrap(rec)
	for tag := int64(40); tag < 43; tag++ {
		if err := fc.WriteFrame(msgFrame(t, 1, 2, tag, tag)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.frames) != 0 {
		t.Fatalf("frames leaked before control frame: %d", len(rec.frames))
	}
	control := []byte{fExit, 0, 0, 0}
	if err := fc.WriteFrame(control); err != nil {
		t.Fatal(err)
	}
	if n := len(rec.frames); n != 4 {
		t.Fatalf("inner saw %d frames, want 3 flushed + control", n)
	}
	got := frameTags(t, rec.frames[:3])
	// Held frame 40 first (send order), then the window reversed.
	if want := []int64{40, 42, 41}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flush order = %v, want %v", got, want)
	}
	if last := rec.frames[3]; last[0] != fExit {
		t.Fatalf("control frame not last (type %c)", last[0])
	}
}

// TestFaultDropAndDupCounters: drop and duplicate predicates see the
// 1-based per-(src,dst,tag) occurrence and the spec counts each action.
func TestFaultDropAndDupCounters(t *testing.T) {
	spec := &FaultSpec{
		Drop: func(src, dst, tag int64, occ int) bool { return occ == 1 && tag == 50 },
		Dup:  func(src, dst, tag int64, occ int) bool { return tag == 51 },
	}
	rec := &recordConn{}
	fc := spec.Wrap(rec)
	for _, tag := range []int64{50, 50, 51} {
		if err := fc.WriteFrame(msgFrame(t, 1, 2, tag, tag)); err != nil {
			t.Fatal(err)
		}
	}
	got := frameTags(t, rec.frames)
	// First 50 dropped, second 50 passes (occ=2), 51 duplicated.
	if want := []int64{50, 51, 51}; !reflect.DeepEqual(got, want) {
		t.Fatalf("delivered tags = %v, want %v", got, want)
	}
	if spec.Dropped() != 1 || spec.Duplicated() != 1 {
		t.Fatalf("Dropped=%d Duplicated=%d, want 1 and 1", spec.Dropped(), spec.Duplicated())
	}
}
