package transport

import (
	"crypto/sha256"
	"sync"
)

// The checkpoint store RPC streams large payloads — full images and the
// periodic chain-compacting fulls of the delta pipeline — as
// content-hashed chunks, and both ends keep a chunk cache keyed by
// SHA-256. A put announces its chunk hashes first and ships only the
// chunks the hub lacks; a get returns a manifest and the worker fetches
// only the chunks it has not seen. Identical heap blocks therefore cross
// the interconnect once: a retried RPC, a re-resurrection from the same
// chain, or a periodic full that shares most bytes with the previous one
// ships only what changed. Everything degrades to the plain single-frame
// Put/Get on any miss or mismatch, so dedup is purely an optimization —
// never a correctness dependency.

// chunkSize is the streaming granularity. Variable so tests can force
// multi-chunk flows with small payloads.
var chunkSize = 64 << 10

// errNoChunkedPut is the hub's reply to a chunk whose put announcement
// it no longer holds — the session state died with a reconnect. The
// client recognizes it and restarts the whole flow (announce is cheap
// and already-shipped chunks sit in the hub's content cache).
const errNoChunkedPut = "transport: no chunked put in progress"

// chunkHash is a content address.
type chunkHash = [sha256.Size]byte

// splitScratch pools the chunk-list/hash-list scratch splitChunksPooled
// hands out: checkpoint puts and gets recur with the same chunk counts,
// so the slices are reused instead of reallocated per store operation.
var splitScratch = sync.Pool{
	New: func() any { return &splitBufs{} },
}

type splitBufs struct {
	chunks [][]byte
	hashes []chunkHash
}

// splitChunks cuts data into chunkSize pieces and hashes each.
func splitChunks(data []byte) (chunks [][]byte, hashes []chunkHash) {
	return split(data, nil, nil)
}

// splitChunksPooled is splitChunks over pooled scratch. The caller must
// invoke release exactly once when the chunk and hash slices are dead;
// values copied out of them (cache inserts copy, frame encoders copy)
// survive the release.
func splitChunksPooled(data []byte) (chunks [][]byte, hashes []chunkHash, release func()) {
	bufs := splitScratch.Get().(*splitBufs)
	bufs.chunks, bufs.hashes = split(data, bufs.chunks[:0], bufs.hashes[:0])
	return bufs.chunks, bufs.hashes, func() {
		for i := range bufs.chunks {
			bufs.chunks[i] = nil // drop payload references while pooled
		}
		splitScratch.Put(bufs)
	}
}

func split(data []byte, chunks [][]byte, hashes []chunkHash) ([][]byte, []chunkHash) {
	for off := 0; off < len(data); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		c := data[off:end]
		chunks = append(chunks, c)
		hashes = append(hashes, sha256.Sum256(c))
	}
	return chunks, hashes
}

// chunkCache is a bounded FIFO content-addressed chunk cache.
type chunkCache struct {
	mu    sync.Mutex
	m     map[chunkHash][]byte
	order []chunkHash
	max   int
}

// newChunkCache creates a cache holding at most max chunks (≈ max ×
// chunkSize bytes).
func newChunkCache(max int) *chunkCache {
	return &chunkCache{m: make(map[chunkHash][]byte), max: max}
}

func (c *chunkCache) get(h chunkHash) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[h]
	return b, ok
}

func (c *chunkCache) put(h chunkHash, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[h]; ok {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.m[h] = cp
	c.order = append(c.order, h)
	for len(c.order) > c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.m, old)
	}
}
