package transport

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/wire"
)

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("transport: client closed")

// FrameConn is the link a client speaks frames over. Tests wrap the real
// TCP framing with fault injectors (see FaultSpec).
type FrameConn interface {
	ReadFrame() ([]byte, error)
	WriteFrame(payload []byte) error
}

// ClientConfig configures a worker's connection to the coordinator hub.
type ClientConfig struct {
	// Addr is the hub address to join.
	Addr string
	// Node is the node this worker hosts.
	Node int64
	// Router is the worker's local router; inbound traffic is injected
	// into it (deliveries wake parked receivers, ROLL advances the epoch).
	// The caller marks its hosted nodes local and installs the client as
	// the uplink after Dial returns.
	Router *msg.Router
	// OnFail is invoked when the coordinator declares this worker's node
	// failed. The worker is expected to die: in a real deployment the
	// process exits; in-process tests tear the engine down.
	OnFail func()
	// OnAdopt, when set, accepts inbound node://K handoffs: it must
	// install the image as the process for dst and return nil, after
	// which the client announces ownership of dst to the hub.
	OnAdopt func(dst, seen int64, img *wire.Image) error
	// Resurrect marks this worker as a resurrection from checkpoint: its
	// HELLO may clear the node's failed mark at the hub. A fresh or
	// rejoining incarnation of a failed node is re-killed instead.
	Resurrect bool
	// Dial overrides the TCP dialer (tests, throttled links).
	Dial func(addr string) (net.Conn, error)
	// Wrap, when set, wraps each new connection's framing — the fault
	// injection hook.
	Wrap func(FrameConn) FrameConn
	// DialAttempts bounds connect/reconnect tries (default 8, full-jitter
	// exponential backoff from RetryBase, capped at RetryMax).
	DialAttempts int
	// RetryBase is the initial backoff window (default 25ms, doubling).
	RetryBase time.Duration
	// RetryMax caps the backoff window (default 1s). Each retry sleeps a
	// uniformly random duration inside the current window ("full jitter"),
	// so a hub restart with hundreds of workers — or hundreds of mojd
	// tenants — does not produce a synchronized reconnect stampede that
	// knocks the hub over again the moment it comes back.
	RetryMax time.Duration
	// RPCTimeout bounds each store/handoff round trip (default 30s).
	RPCTimeout time.Duration
	// Trace, when set, records this worker's wire activity (frame
	// send/recv, outbound replay on reconnect, inbound ROLL) on the
	// "wire/<node>" stream.
	Trace *obs.Tracer
}

// Client is the worker end of the cluster transport: a msg.Uplink whose
// remote side is the coordinator hub. All writes go through one
// connection; if it drops, the client redials, re-HELLOs, and replays its
// keyed outbound buffer while the hub replays the inbound one — the
// keyed-idempotent contract makes the overlap harmless.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	conn    FrameConn
	raw     net.Conn
	gen     int                              // connection generation, for reader teardown
	out     map[int64]map[int64][]heap.Value // dst -> tag -> words (replay buffer)
	owned   []int64                          // nodes adopted via handoff; re-announced on reconnect
	pending map[uint32]chan rpcReply
	nextID  uint32
	closed  bool

	chunks *chunkCache // content-addressed cache for store streaming

	// ev is the worker's wire trace stream; nil when tracing is off, in
	// which case every Emit is a single branch.
	ev *obs.Stream

	wg sync.WaitGroup
}

type rpcReply struct {
	kind    byte // reply frame type (fAck, fData, fNames, fNeed, fManif)
	errStr  string
	data    []byte
	names   []string
	indices []uint32    // fNeed: chunk indices the hub lacks
	hashes  []chunkHash // fManif: content hashes of the payload's chunks
	total   uint32      // fManif: payload size
}

// Dial connects a worker to the hub and completes the HELLO/WELCOME
// handshake; the router's rollback epoch is synced before Dial returns,
// so a resurrected node can immediately mark its checkpoint as the
// rollback point (Router.Restore).
func Dial(cfg ClientConfig) (*Client, error) {
	if cfg.Router == nil {
		return nil, errors.New("transport: ClientConfig.Router is required")
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 8
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Second
	}
	if cfg.RetryMax < cfg.RetryBase {
		cfg.RetryMax = cfg.RetryBase
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 30 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		out:     make(map[int64]map[int64][]heap.Value),
		pending: make(map[uint32]chan rpcReply),
		chunks:  newChunkCache(1024),
	}
	if cfg.Trace != nil {
		c.ev = cfg.Trace.Stream(fmt.Sprintf("wire/%d", cfg.Node))
	}
	c.mu.Lock()
	err := c.ensureLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears the connection down for good.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.teardownLocked()
	c.mu.Unlock()
	c.wg.Wait()
}

// teardownLocked drops the current connection and fails outstanding RPCs
// (their callers retry on the next connection).
func (c *Client) teardownLocked() {
	if c.raw != nil {
		// Close the wrapped framing first: a fault injector holding frames
		// (reorder window, latency skew) flushes them into the still-open
		// socket instead of silently losing them with the link.
		if cl, ok := c.conn.(io.Closer); ok {
			_ = cl.Close()
		}
		_ = c.raw.Close()
		c.raw = nil
		c.conn = nil
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// ensureLocked (re)establishes the connection: dial with backoff, HELLO,
// WELCOME (epoch sync), outbound replay, reader launch.
func (c *Client) ensureLocked() error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil {
		return nil
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.DialAttempts; attempt++ {
		if attempt > 0 {
			// Sleep without blocking readers delivering into the router.
			c.mu.Unlock()
			time.Sleep(backoffDelay(attempt, c.cfg.RetryBase, c.cfg.RetryMax, rand.Int63n))
			c.mu.Lock()
			if c.closed {
				return ErrClientClosed
			}
			if c.conn != nil { // another writer reconnected meanwhile
				return nil
			}
		}
		if err := c.connectLocked(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("transport: cannot reach hub %s: %w", c.cfg.Addr, lastErr)
}

// backoffDelay computes the sleep before reconnect attempt n (n ≥ 1):
// a uniformly random duration in [0, window) where the window doubles
// from base and is capped at max — AWS-style "full jitter". The cap
// bounds worst-case reconnect latency; the jitter decorrelates the
// retry clocks of workers that all lost the same hub at the same
// instant, spreading their redials across the whole window instead of
// hammering the recovering hub in lockstep. rnd is rand.Int63n-shaped
// (injected so the schedule is unit-testable).
func backoffDelay(attempt int, base, max time.Duration, rnd func(int64) int64) time.Duration {
	window := base
	for i := 1; i < attempt; i++ {
		window *= 2
		if window >= max || window <= 0 { // <= 0: shift overflow
			window = max
			break
		}
	}
	if window > max {
		window = max
	}
	if window <= 0 {
		return 0
	}
	return time.Duration(rnd(int64(window)))
}

func (c *Client) connectLocked() error {
	raw, err := c.cfg.Dial(c.cfg.Addr)
	if err != nil {
		return err
	}
	var fc FrameConn = frame.NewConn(raw)
	if c.cfg.Wrap != nil {
		fc = c.cfg.Wrap(fc)
	}
	if err := fc.WriteFrame(encodeHello(c.cfg.Node, c.cfg.Resurrect)); err != nil {
		_ = raw.Close()
		return err
	}
	welcome, err := fc.ReadFrame()
	if err != nil || len(welcome) == 0 || welcome[0] != fWelcome {
		_ = raw.Close()
		return fmt.Errorf("transport: bad welcome (%v)", err)
	}
	epoch, err := decodeEpoch(welcome)
	if err != nil {
		_ = raw.Close()
		return err
	}
	c.cfg.Router.SetEpoch(epoch)
	c.raw = raw
	c.conn = fc
	c.gen++
	// Re-announce ownership of adopted nodes: the hub dropped the old
	// session's registrations, and without this their border traffic
	// would buffer forever.
	for _, node := range c.owned {
		if err := fc.WriteFrame(encodeNode(fOwn, node)); err != nil {
			c.teardownLocked()
			return err
		}
	}
	// Replay the outbound keyed buffer: anything the old connection may
	// have lost in flight is re-delivered; duplicates overwrite equals.
	replayed := 0
	for dst, tags := range c.out {
		batch := make([]msg.Batched, 0, len(tags))
		for tag, words := range tags {
			batch = append(batch, msg.Batched{Tag: tag, Words: words})
		}
		if len(batch) == 0 {
			continue
		}
		f, err := encodeMsg(c.cfg.Node, dst, batch)
		if err != nil {
			continue
		}
		if err := fc.WriteFrame(f); err != nil {
			c.teardownLocked()
			return err
		}
		replayed++
	}
	if replayed > 0 {
		c.ev.Emit(obs.EvFrameReplay, int(c.cfg.Node), uint64(epoch), 0, int64(replayed), 0, "")
	}
	c.wg.Add(1)
	go c.readLoop(fc, c.gen)
	return nil
}

// readLoop dispatches inbound frames until its connection dies; it then
// kicks a reconnect so a worker parked in a receive (sending nothing) is
// not stranded.
func (c *Client) readLoop(fc FrameConn, gen int) {
	defer c.wg.Done()
	for {
		b, err := fc.ReadFrame()
		if err != nil {
			c.mu.Lock()
			if c.gen == gen && !c.closed {
				c.teardownLocked()
				err := c.ensureLocked()
				c.mu.Unlock()
				if err != nil {
					// The hub is gone for good: release any parked
					// receiver so the process can observe shutdown, and
					// record the transport failure so later sends surface
					// it instead of an orderly-looking router close.
					c.cfg.Router.CloseErr(fmt.Errorf("transport: hub %s unreachable: %w", c.cfg.Addr, err))
				}
			} else {
				c.mu.Unlock()
			}
			return
		}
		if len(b) == 0 {
			continue
		}
		switch b[0] {
		case fMsg:
			src, dst, batch, err := decodeMsg(b)
			if err == nil && c.cfg.Router.Local(dst) {
				c.ev.Emit(obs.EvFrameRecv, int(dst), 0, 0, src, int64(len(batch)), "msg")
				_ = c.cfg.Router.SendBatch(src, dst, batch)
			}
		case fRoll:
			if epoch, err := decodeEpoch(b); err == nil {
				c.ev.Emit(obs.EvMsgRoll, int(c.cfg.Node), uint64(epoch), 0, 0, 0, "wire")
				c.cfg.Router.SetEpoch(epoch)
			}
		case fFail:
			if c.cfg.OnFail != nil {
				c.cfg.OnFail()
			}
		case fAck:
			if id, errStr, err := decodeAck(b); err == nil {
				c.deliverReply(id, rpcReply{kind: fAck, errStr: errStr})
			}
		case fData:
			if id, errStr, data, err := decodeData(b); err == nil {
				c.deliverReply(id, rpcReply{kind: fData, errStr: errStr, data: data})
			}
		case fNames:
			if id, errStr, names, err := decodeNames(b); err == nil {
				c.deliverReply(id, rpcReply{kind: fNames, errStr: errStr, names: names})
			}
		case fNeed:
			if id, errStr, indices, err := decodeNeed(b); err == nil {
				c.deliverReply(id, rpcReply{kind: fNeed, errStr: errStr, indices: indices})
			}
		case fManif:
			if id, errStr, total, hashes, err := decodeManif(b); err == nil {
				c.deliverReply(id, rpcReply{kind: fManif, errStr: errStr, total: total, hashes: hashes})
			}
		case fMigrate:
			id, _, dst, seen, image, err := decodeMigrate(b)
			if err != nil {
				continue
			}
			// Adoption unpacks and verifies a whole process image; do it
			// off the read loop so border traffic keeps flowing.
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.adopt(id, dst, seen, image)
			}()
		}
	}
}

func (c *Client) adopt(id uint32, dst, seen int64, image []byte) {
	var errStr string
	if c.cfg.OnAdopt == nil {
		errStr = "transport: worker does not adopt migrations"
	} else if img, err := wire.DecodeImage(image); err != nil {
		errStr = err.Error()
	} else if err := c.cfg.OnAdopt(dst, seen, img); err != nil {
		errStr = err.Error()
	}
	if errStr == "" {
		// Claim the node before acking so the hub routes its traffic here
		// by the time the source resumes the survivors; remember it so a
		// reconnect re-claims it.
		c.mu.Lock()
		c.owned = append(c.owned, dst)
		c.mu.Unlock()
		_ = c.writeFrame(encodeNode(fOwn, dst))
	}
	_ = c.writeFrame(encodeAck(id, errStr))
}

func (c *Client) deliverReply(id uint32, rep rpcReply) {
	c.mu.Lock()
	ch := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ch != nil {
		ch <- rep
	}
}

// writeFrame sends one frame, reconnecting on a dead link.
func (c *Client) writeFrame(b []byte) error {
	for attempt := 0; attempt < 3; attempt++ {
		c.mu.Lock()
		if err := c.ensureLocked(); err != nil {
			c.mu.Unlock()
			return err
		}
		err := c.conn.WriteFrame(b)
		if err == nil {
			c.mu.Unlock()
			return nil
		}
		c.teardownLocked()
		c.mu.Unlock()
	}
	return fmt.Errorf("transport: write to hub %s kept failing", c.cfg.Addr)
}

// SendBatch implements msg.Uplink: buffer for replay, then forward.
func (c *Client) SendBatch(src, dst int64, batch []msg.Batched) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClientClosed
	}
	tags := c.out[dst]
	if tags == nil {
		tags = make(map[int64][]heap.Value)
		c.out[dst] = tags
	}
	for _, b := range batch {
		cp := make([]heap.Value, len(b.Words))
		copy(cp, b.Words)
		tags[b.Tag] = cp
	}
	c.mu.Unlock()
	c.ev.Emit(obs.EvFrameSend, int(src), 0, 0, dst, int64(len(batch)), "msg")
	f, err := encodeMsg(src, dst, batch)
	if err != nil {
		return err
	}
	return c.writeFrame(f)
}

// GC implements msg.Uplink: the node committed past `below`; the hub's
// buffer for it can shrink. The worker's own outbound buffer for a
// destination shrinks when that destination GCs (the hub forgets;
// re-replay after that point would be re-pruned there).
func (c *Client) GC(node, below int64) error {
	return c.writeFrame(encodeGC(node, below))
}

// round performs one request/reply exchange: register id (0 allocates a
// fresh one), write the frames, wait for the single reply. ok=false
// reports a dead connection — any hub-side state for the exchange is
// gone and the caller must restart its flow on the new connection.
func (c *Client) round(id uint32, deadline time.Time, frames func(id uint32) [][]byte) (rep rpcReply, usedID uint32, ok bool, err error) {
	c.mu.Lock()
	if err := c.ensureLocked(); err != nil {
		c.mu.Unlock()
		return rpcReply{}, 0, false, err
	}
	if id == 0 {
		c.nextID++
		id = c.nextID
	}
	ch := make(chan rpcReply, 1)
	c.pending[id] = ch
	for _, f := range frames(id) {
		if err := c.conn.WriteFrame(f); err != nil {
			delete(c.pending, id)
			c.teardownLocked()
			c.mu.Unlock()
			return rpcReply{}, id, false, nil
		}
	}
	c.mu.Unlock()

	select {
	case rep, alive := <-ch:
		if !alive {
			// Connection died before the reply; the caller retries.
			return rpcReply{}, id, false, nil
		}
		return rep, id, true, nil
	case <-time.After(time.Until(deadline)):
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return rpcReply{}, id, false, fmt.Errorf("transport: rpc timed out after %s", c.cfg.RPCTimeout)
	}
}

// rpc performs one single-frame round trip, retrying across reconnects
// (the store operations are idempotent).
func (c *Client) rpc(build func(id uint32) []byte) (rpcReply, error) {
	deadline := time.Now().Add(c.cfg.RPCTimeout)
	for {
		rep, _, ok, err := c.round(0, deadline, func(id uint32) [][]byte {
			return [][]byte{build(id)}
		})
		if err != nil {
			return rpcReply{}, err
		}
		if ok {
			return rep, nil
		}
		if time.Now().After(deadline) {
			return rpcReply{}, fmt.Errorf("transport: rpc timed out after %s", c.cfg.RPCTimeout)
		}
	}
}

// putChunked streams a large store write as content-hashed chunks: an
// announce frame carrying the hashes, a need-list reply, then only the
// chunks the hub lacks. A reconnect anywhere restarts the whole flow —
// the announce is cheap and chunks already shipped are in the hub's
// cache, so the retry converges fast.
func (c *Client) putChunked(name string, data []byte) error {
	chunks, hashes, release := splitChunksPooled(data)
	defer release()
	deadline := time.Now().Add(c.cfg.RPCTimeout)
	for {
		rep, id, ok, err := c.round(0, deadline, func(id uint32) [][]byte {
			return [][]byte{encodePutC(id, name, uint32(len(data)), hashes)}
		})
		if err != nil {
			return err
		}
		if ok && rep.kind == fNeed && rep.errStr == "" {
			good := true
			for _, idx := range rep.indices {
				if int(idx) >= len(chunks) {
					good = false
					break
				}
			}
			if !good {
				return errors.New("transport: hub requested an out-of-range chunk")
			}
			rep, _, ok, err = c.round(id, deadline, func(id uint32) [][]byte {
				frames := make([][]byte, 0, len(rep.indices))
				for _, idx := range rep.indices {
					frames = append(frames, encodeChunk(id, idx, chunks[idx]))
				}
				return frames
			})
			if err != nil {
				return err
			}
		}
		if ok {
			if rep.errStr == errNoChunkedPut {
				// The hub session (and with it the announce state) died in
				// a reconnect between the two rounds; restart the flow.
				if time.Now().After(deadline) {
					return fmt.Errorf("transport: chunked put timed out after %s", c.cfg.RPCTimeout)
				}
				continue
			}
			if rep.errStr != "" {
				return errors.New(rep.errStr)
			}
			if rep.kind != fAck {
				return fmt.Errorf("transport: unexpected %q reply to chunked put", rep.kind)
			}
			// The hub now holds every chunk; remember them locally so a
			// later read of this (or an overlapping) checkpoint skips them.
			for i, h := range hashes {
				c.chunks.put(h, chunks[i])
			}
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: chunked put timed out after %s", c.cfg.RPCTimeout)
		}
	}
}

// assembleManifest reconstructs a chunked get from the local cache plus
// per-chunk fetches. ok=false means the caller should fall back to a
// plain full read.
func (c *Client) assembleManifest(rep rpcReply) ([]byte, bool) {
	out := make([]byte, 0, rep.total)
	for _, h := range rep.hashes {
		if chunk, ok := c.chunks.get(h); ok {
			out = append(out, chunk...)
			continue
		}
		crep, err := c.rpc(func(id uint32) []byte { return encodeHashGet(id, h) })
		if err != nil || crep.errStr != "" || sha256.Sum256(crep.data) != h {
			return nil, false
		}
		c.chunks.put(h, crep.data)
		out = append(out, crep.data...)
	}
	if uint32(len(out)) != rep.total {
		return nil, false
	}
	return out, true
}

// Exit reports a node's final state to the coordinator.
func (c *Client) Exit(res Result) error {
	return c.writeFrame(encodeExit(res))
}

// Handoff implements the engine's RemoteHandoff hook: ship a packed image
// to whichever worker hosts dst and wait for its adoption ack.
func (c *Client) Handoff(src, dst int64, img *wire.Image, seen int64) error {
	image := wire.EncodeImage(img)
	rep, err := c.rpc(func(id uint32) []byte {
		return encodeMigrate(id, src, dst, seen, image)
	})
	if err != nil {
		return err
	}
	if rep.errStr != "" {
		return errors.New(rep.errStr)
	}
	return nil
}

// remoteStore is the worker's view of the coordinator's checkpoint store.
type remoteStore struct{ c *Client }

// RemoteStore returns a migrate.Store whose operations run on the hub —
// the paper's shared NFS mount, served over the transport.
func (c *Client) RemoteStore() migrate.Store { return remoteStore{c} }

func (s remoteStore) Put(name string, data []byte) error {
	if len(data) > chunkSize {
		return s.c.putChunked(name, data)
	}
	rep, err := s.c.rpc(func(id uint32) []byte { return encodePut(id, name, data) })
	if err != nil {
		return err
	}
	if rep.errStr != "" {
		return errors.New(rep.errStr)
	}
	return nil
}

func (s remoteStore) Get(name string) ([]byte, error) {
	rep, err := s.c.rpc(func(id uint32) []byte { return encodeGet(id, name, false) })
	if err != nil {
		return nil, err
	}
	if rep.errStr != "" {
		return nil, errors.New(rep.errStr)
	}
	if rep.kind != fManif {
		return rep.data, nil
	}
	if data, ok := s.c.assembleManifest(rep); ok {
		return data, nil
	}
	// Dedup is an optimization only: any miss or mismatch falls back to
	// the plain single-frame read.
	rep, err = s.c.rpc(func(id uint32) []byte { return encodeGet(id, name, true) })
	if err != nil {
		return nil, err
	}
	if rep.errStr != "" {
		return nil, errors.New(rep.errStr)
	}
	return rep.data, nil
}

func (s remoteStore) List() ([]string, error) {
	rep, err := s.c.rpc(func(id uint32) []byte { return encodeList(id) })
	if err != nil {
		return nil, err
	}
	if rep.errStr != "" {
		return nil, errors.New(rep.errStr)
	}
	return rep.names, nil
}
