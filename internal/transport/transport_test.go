package transport

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/msg"
	"repro/internal/rt"
	"repro/internal/wire"
)

func newHub(t *testing.T) *Hub {
	t.Helper()
	h, err := Listen("127.0.0.1:0", cluster.NewMemStore())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// joinNode builds the worker-side stack without an engine: a router
// hosting `node` with the client as its uplink.
func joinNode(t *testing.T, h *Hub, node int64, cfg ClientConfig) (*msg.Router, *Client) {
	t.Helper()
	r := msg.NewRouter()
	r.SetLocal(node)
	cfg.Addr = h.Addr()
	cfg.Node = node
	cfg.Router = r
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	r.SetUplink(c)
	return r, c
}

func iv(vs ...int64) []heap.Value {
	out := make([]heap.Value, len(vs))
	for i, v := range vs {
		out[i] = heap.IntVal(v)
	}
	return out
}

func recvWithin(t *testing.T, r *msg.Router, dst, src, tag int64, d time.Duration) []heap.Value {
	t.Helper()
	type res struct {
		words  []heap.Value
		status int64
	}
	ch := make(chan res, 1)
	go func() {
		w, st := r.Recv(dst, src, tag)
		ch <- res{w, st}
	}()
	select {
	case got := <-ch:
		if got.status != msg.StatusOK {
			t.Fatalf("recv(%d<-%d tag %d) status %d", dst, src, tag, got.status)
		}
		return got.words
	case <-time.After(d):
		t.Fatalf("recv(%d<-%d tag %d) timed out", dst, src, tag)
		return nil
	}
}

// TestRelayBuffersForLateJoiner: messages sent before the destination's
// worker connects — or re-sent as duplicates — are buffered keyed at the
// hub and replayed on HELLO, with the latest payload per key winning.
func TestRelayBuffersForLateJoiner(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{})

	// Node 2 is not connected: these buffer at the hub. The re-send of
	// tag 7 models a deterministic replay (identical key, refreshed
	// content stands in for "identical content" to make the overwrite
	// observable).
	if err := r1.Send(1, 2, 7, iv(10)); err != nil {
		t.Fatal(err)
	}
	if err := r1.Send(1, 2, 7, iv(11)); err != nil {
		t.Fatal(err)
	}
	if err := r1.Send(1, 2, 8, iv(20, 21)); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.buf[2][1]) == 2
	}, "hub never buffered both tags")

	r2, _ := joinNode(t, h, 2, ClientConfig{})
	if got := recvWithin(t, r2, 2, 1, 7, 5*time.Second); got[0].I != 11 {
		t.Fatalf("tag 7 = %v, want the overwritten payload 11", got)
	}
	if got := recvWithin(t, r2, 2, 1, 8, 5*time.Second); len(got) != 2 || got[1].I != 21 {
		t.Fatalf("tag 8 = %v", got)
	}
}

// TestLiveRelayBothDirections: with both workers connected, sends cross
// the hub and wake parked remote receivers.
func TestLiveRelayBothDirections(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{})
	r2, _ := joinNode(t, h, 2, ClientConfig{})

	// The receiver parks first — OnBlock fires exactly when it does, so
	// the send below provably lands on a parked receiver (no sleep race).
	parked := make(chan struct{})
	done := make(chan []heap.Value, 1)
	go func() {
		w, _ := r2.RecvHooked(2, 1, 5, &msg.BlockHooks{OnBlock: func() { close(parked) }})
		done <- w
	}()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("receiver never parked")
	}
	if err := r1.Send(1, 2, 5, iv(42)); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-done:
		if len(w) != 1 || w[0].I != 42 {
			t.Fatalf("payload %v", w)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked remote receiver never woke")
	}
	if err := r2.Send(2, 1, 6, iv(43)); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, r1, 1, 2, 6, 5*time.Second); got[0].I != 43 {
		t.Fatalf("reverse payload %v", got)
	}
}

// TestFailBroadcastsRollAndKillsVictim: Fail advances the epoch (MSG_ROLL
// exactly once at every survivor), orders the victim to die, and a
// resurrection HELLO joins at the current epoch without re-observing it.
func TestFailBroadcastsRollAndKillsVictim(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{})
	var victimKilled atomic.Bool
	joinNode(t, h, 2, ClientConfig{OnFail: func() { victimKilled.Store(true) }})

	h.Fail(2)

	waitFor(t, func() bool { return victimKilled.Load() }, "victim never told to die")
	waitFor(t, func() bool { return r1.Epoch() == 1 }, "survivor epoch never advanced")
	if _, st := r1.Recv(1, 2, 1); st != msg.StatusRoll {
		t.Fatalf("survivor first recv status %d, want MSG_ROLL", st)
	}

	// Resurrected incarnation: a fresh router joining as node 2 with the
	// resurrect flag, which clears the failed mark.
	r2b, _ := joinNode(t, h, 2, ClientConfig{Resurrect: true})
	if r2b.Epoch() != 1 {
		t.Fatalf("resurrected epoch %d, want 1", r2b.Epoch())
	}
	r2b.Restore(2) // checkpoint is the rollback point: seen = epoch
	if _, st, ok := r2b.TryRecv(2, 1, 99); ok {
		t.Fatalf("resurrected node re-observed the epoch (status %d)", st)
	}
}

// TestZombieRejoinIsReKilled: a non-resurrection incarnation of a failed
// node reconnecting (say the kill order was lost in a network blip) must
// be ordered to die again, not re-admitted — the node would otherwise
// briefly have two live processes once the real resurrection arrives.
func TestZombieRejoinIsReKilled(t *testing.T) {
	h := newHub(t)
	joinNode(t, h, 2, ClientConfig{})
	h.Fail(2)

	var zombieKilled atomic.Bool
	joinNode(t, h, 2, ClientConfig{OnFail: func() { zombieKilled.Store(true) }})
	waitFor(t, func() bool { return zombieKilled.Load() }, "zombie rejoin was admitted instead of re-killed")

	h.mu.Lock()
	stillFailed := h.failed[2]
	h.mu.Unlock()
	if !stillFailed {
		t.Fatal("zombie rejoin cleared the failed mark")
	}
}

// TestRemoteStore: the checkpoint store served over the transport behaves
// like the local one, including errors.
func TestRemoteStore(t *testing.T) {
	h := newHub(t)
	_, c := joinNode(t, h, 1, ClientConfig{})
	s := c.RemoteStore()
	if err := s.Put("grid-ck-0", []byte("image-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("grid-ck-0")
	if err != nil || string(got) != "image-bytes" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	names, err := s.List()
	if err != nil || len(names) != 1 || names[0] != "grid-ck-0" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if _, err := s.Get("ghost"); err == nil {
		t.Fatal("missing checkpoint returned data")
	}
}

// TestReconnectReplaysBothSides: a network blip (every connection
// dropped) is invisible — the client redials, replays its outbound keyed
// buffer, and the hub replays the inbound one.
func TestReconnectReplaysBothSides(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{RetryBase: 5 * time.Millisecond})
	r2, _ := joinNode(t, h, 2, ClientConfig{RetryBase: 5 * time.Millisecond})

	if err := r1.Send(1, 2, 1, iv(100)); err != nil {
		t.Fatal(err)
	}
	recvWithin(t, r2, 2, 1, 1, 5*time.Second)

	h.DropLinks()

	// The next send goes through a redial; tag 1 is replayed alongside.
	if err := r1.Send(1, 2, 2, iv(200)); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, r2, 2, 1, 2, 10*time.Second); got[0].I != 200 {
		t.Fatalf("post-blip payload %v", got)
	}
	// And the pre-blip message is still (re)readable: idempotent replay.
	if got := recvWithin(t, r2, 2, 1, 1, 10*time.Second); got[0].I != 100 {
		t.Fatalf("replayed payload %v", got)
	}
}

// TestCrossProcessHandoff: a process executing migrate("node://5") on one
// engine is packed, shipped through the hub, and adopted by the engine
// hosting node 5 — heap intact, node_id rebound — exactly like the
// in-process handoff, but across two independent router/engine stacks.
func TestCrossProcessHandoff(t *testing.T) {
	const handoffSrc = `
int main() {
	int me = node_id();
	ptr buf = alloc(1);
	buf[0] = 41;
	if (me == 0) {
		migrate("node://5");
	}
	return buf[0] + node_id();
}`
	prog, err := lang.Compile(handoffSrc, cluster.Externs())
	if err != nil {
		t.Fatal(err)
	}
	h := newHub(t)

	// Worker B: hosts node 5, idle, ready to adopt.
	routerB := msg.NewRouter()
	routerB.SetLocal(5)
	adopted := make(chan error, 1)
	var engineB *cluster.Engine
	engineReady := make(chan struct{})
	clientB, err := Dial(ClientConfig{
		Addr: h.Addr(), Node: 5, Router: routerB,
		OnAdopt: func(dst, seen int64, img *wire.Image) error {
			<-engineReady
			err := engineB.Adopt(dst, img, seen, nil)
			adopted <- err
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()
	routerB.SetUplink(clientB)
	engineB = cluster.NewEngine(cluster.EngineConfig{
		Router: routerB, Store: clientB.RemoteStore(),
	})
	defer engineB.Close()
	close(engineReady)

	// Worker A: hosts node 0 and runs the migrating process.
	routerA := msg.NewRouter()
	routerA.SetLocal(0)
	clientA, err := Dial(ClientConfig{Addr: h.Addr(), Node: 0, Router: routerA})
	if err != nil {
		t.Fatal(err)
	}
	defer clientA.Close()
	routerA.SetUplink(clientA)
	engineA := cluster.NewEngine(cluster.EngineConfig{
		Router: routerA, Store: clientA.RemoteStore(),
		RemoteHandoff: clientA.Handoff,
	})
	defer engineA.Close()
	if err := engineA.StartProcess(0, prog, nil, nil); err != nil {
		t.Fatal(err)
	}

	statesA, err := engineA.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := statesA[0]; st.Status != rt.StatusMigrated {
		t.Fatalf("node 0 = %+v, want migrated", st)
	}
	select {
	case aerr := <-adopted:
		if aerr != nil {
			t.Fatalf("adoption failed: %v", aerr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("image never adopted")
	}
	statesB, err := engineB.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := statesB[5]; st == nil || st.Status != rt.StatusHalted || st.Halt != 46 {
		t.Fatalf("node 5 = %+v, want halt 46 (heap word survived, node id rebound)", st)
	}
}

// TestHandoffToUnhostedNodeContinuesLocal: migrating to a node no worker
// hosts must fail the migration and continue the process locally
// (§4.2.1's failed-migration semantics, across the wire).
func TestHandoffToUnhostedNodeContinuesLocal(t *testing.T) {
	const src = `
int main() {
	migrate("node://9");
	return node_id() * 100 + 7;
}`
	prog, err := lang.Compile(src, cluster.Externs())
	if err != nil {
		t.Fatal(err)
	}
	h := newHub(t)
	router := msg.NewRouter()
	router.SetLocal(0)
	client, err := Dial(ClientConfig{Addr: h.Addr(), Node: 0, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	router.SetUplink(client)
	e := cluster.NewEngine(cluster.EngineConfig{
		Router: router, Store: client.RemoteStore(), RemoteHandoff: client.Handoff,
	})
	defer e.Close()
	if err := e.StartProcess(0, prog, nil, nil); err != nil {
		t.Fatal(err)
	}
	states, err := e.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st := states[0]; st.Status != rt.StatusHalted || st.Halt != 7 {
		t.Fatalf("node 0 = %+v, want local halt 7", st)
	}
}

// TestExitAndWaitResults: workers report final states; WaitResults
// aggregates them.
func TestExitAndWaitResults(t *testing.T) {
	h := newHub(t)
	_, c1 := joinNode(t, h, 1, ClientConfig{})
	_, c2 := joinNode(t, h, 2, ClientConfig{})
	if err := c1.Exit(Result{Node: 1, Status: rt.StatusHalted, Halt: 11, Rolls: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Exit(Result{Node: 2, Status: rt.StatusHalted, Halt: 22}); err != nil {
		t.Fatal(err)
	}
	res, err := h.WaitResults(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Halt != 11 || res[1].Rolls != 2 || res[2].Halt != 22 {
		t.Fatalf("results = %+v", res)
	}
	if _, err := h.WaitResults(3, 50*time.Millisecond); err == nil {
		t.Fatal("WaitResults(3) should time out with 2 results")
	}
}

// TestUplinkErrorSurfacesAsClosed: when the hub is gone for good, a send
// eventually errors instead of hanging forever.
func TestUplinkErrorSurfacesAsClosed(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{DialAttempts: 2, RetryBase: time.Millisecond})
	h.Close()
	var lastErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if lastErr = r1.Send(1, 2, 1, iv(1)); lastErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if lastErr == nil {
		t.Fatal("sends kept succeeding with the hub gone")
	}
	if errors.Is(lastErr, msg.ErrClosed) {
		t.Fatalf("send failed with the router's own closed error; want a transport error, got %v", lastErr)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestMultipleSequentialFailuresReplayAndGC: the hub's keyed
// store-and-forward buffer survives several failure/resurrection cycles
// in one run. Two different nodes fail in sequence; each resurrected
// incarnation's HELLO replays exactly the keyed messages its mailbox
// would still hold in-process — minus what the receiver's msg_gc pruned
// between the failures — and re-sends replay idempotently.
func TestMultipleSequentialFailuresReplayAndGC(t *testing.T) {
	h := newHub(t)
	r1, _ := joinNode(t, h, 1, ClientConfig{})
	r2, _ := joinNode(t, h, 2, ClientConfig{})

	// Steps 1..4 flow both ways before anything fails.
	for tag := int64(1); tag <= 4; tag++ {
		if err := r1.Send(1, 2, tag, iv(100+tag)); err != nil {
			t.Fatal(err)
		}
		if err := r2.Send(2, 1, tag, iv(200+tag)); err != nil {
			t.Fatal(err)
		}
	}
	recvWithin(t, r2, 2, 1, 4, 5*time.Second)
	recvWithin(t, r1, 1, 2, 4, 5*time.Second)

	// Node 2 commits past step 2 and GCs; the hub's buffer for it prunes.
	r2.GC(2, 3)
	waitFor(t, func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return len(h.buf[2][1]) == 2 // tags 3, 4 remain
	}, "hub never pruned node 2's buffer after GC")

	// Failure 1: node 2 dies; its resurrected incarnation replays only
	// the un-GCed keys.
	h.Fail(2)
	if _, st := r1.Recv(1, 2, 99); st != msg.StatusRoll {
		t.Fatalf("survivor recv status %d, want MSG_ROLL", st)
	}
	r2b, _ := joinNode(t, h, 2, ClientConfig{Resurrect: true})
	r2b.Restore(2)
	if got := recvWithin(t, r2b, 2, 1, 3, 5*time.Second); got[0].I != 103 {
		t.Fatalf("replayed tag 3 = %v, want 103", got)
	}
	if got := recvWithin(t, r2b, 2, 1, 4, 5*time.Second); got[0].I != 104 {
		t.Fatalf("replayed tag 4 = %v, want 104", got)
	}
	if _, _, ok := r2b.TryRecv(2, 1, 2); ok {
		t.Fatal("GCed tag 2 was replayed to the resurrected node")
	}

	// The resurrected incarnation re-executes and re-sends steps its
	// predecessor already sent (identical keys — deterministic replay),
	// plus new progress.
	for tag := int64(3); tag <= 5; tag++ {
		if err := r2b.Send(2, 1, tag, iv(200+tag)); err != nil {
			t.Fatal(err)
		}
	}

	// Failure 2, while the first resurrection is already live: now node 1
	// dies and comes back. Its replay must hold node 2's re-sent keys.
	h.Fail(1)
	if _, st := r2b.Recv(2, 1, 99); st != msg.StatusRoll {
		t.Fatalf("second-failure survivor recv status %d, want MSG_ROLL", st)
	}
	if got := h.Epoch(); got != 2 {
		t.Fatalf("epoch after two failures = %d, want 2", got)
	}
	r1b, _ := joinNode(t, h, 1, ClientConfig{Resurrect: true})
	r1b.Restore(1)
	for tag := int64(1); tag <= 5; tag++ {
		if got := recvWithin(t, r1b, 1, 2, tag, 5*time.Second); got[0].I != 200+tag {
			t.Fatalf("after second resurrection, tag %d = %v, want %d", tag, got, 200+tag)
		}
	}

	// Both resurrected incarnations keep exchanging: the run converges.
	if err := r1b.Send(1, 2, 5, iv(105)); err != nil {
		t.Fatal(err)
	}
	if got := recvWithin(t, r2b, 2, 1, 5, 5*time.Second); got[0].I != 105 {
		t.Fatalf("post-recovery tag 5 = %v, want 105", got)
	}
	// Neither incarnation re-observes an epoch it already joined.
	if _, st, ok := r1b.TryRecv(1, 2, 99); ok && st == msg.StatusRoll {
		t.Fatal("resurrected node 1 re-observed a stale epoch")
	}
}
