package transport

import (
	"io"
	"sync"
	"time"
)

// FaultSpec injects frame-level faults into a client's link for tests:
// border-message (fMsg) frames can be dropped, duplicated, reordered and
// held back (latency skew). Control frames (hello, store RPC, exit, …)
// always pass — the faults model a lossy message path, not a broken
// protocol.
//
// Predicates receive the message key and a 1-based occurrence count per
// (src, dst, tag), so a test can say "drop the first transmission of this
// border and nothing else" and stay fully deterministic. Counters live in
// the spec, not the connection: they keep counting across reconnects.
//
// ReorderWindow, when ≥ 2, holds back up to that many message frames and
// flushes them in reverse order. The window is flushed by any non-message
// frame (GC, checkpoint Put, Exit — all of which the grid app emits every
// checkpoint interval), which bounds how long a frame can be withheld and
// keeps the lockstep border exchange deadlock-free for windows up to the
// per-step send burst (2).
//
// Hold, when set, returns how many subsequent message writes on the same
// connection a frame is withheld for — the straggler/asymmetric-delay
// model: the frame still arrives, just later than everything the sender
// emitted after it. Held frames are released when their write budget is
// spent, by any non-message frame, and on connection close (a link that
// drops mid-hold must not silently lose them; see faultConn.Close).
//
// MaxHold bounds how long any frame stays withheld in wall-clock time: a
// safety flush releases everything MaxHold after the first withheld
// frame of a burst (default 100ms). This is the liveness guarantee that
// lets randomized chaos runs compose Hold/ReorderWindow with arbitrary
// communication patterns: a node whose trailing send of a round is
// withheld may park with no further writes to age it out, and only the
// clock can release the frame. Keyed idempotent delivery makes the late
// arrival harmless, so the flush never changes a run's result — only
// when frames land.
type FaultSpec struct {
	Drop          func(src, dst, tag int64, occurrence int) bool
	Dup           func(src, dst, tag int64, occurrence int) bool
	Hold          func(src, dst, tag int64, occurrence int) int
	ReorderWindow int
	MaxHold       time.Duration

	mu        sync.Mutex
	counts    map[faultKey]int
	dropped   int
	duped     int
	helds     int
	reordered int
}

type faultKey struct{ src, dst, tag int64 }

// Wrap installs the fault injector on a connection; pass it as
// ClientConfig.Wrap.
func (f *FaultSpec) Wrap(inner FrameConn) FrameConn {
	return &faultConn{inner: inner, spec: f}
}

// Dropped reports how many message frames were dropped so far.
func (f *FaultSpec) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Duplicated reports how many message frames were duplicated so far.
func (f *FaultSpec) Duplicated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.duped
}

// Held reports how many message frames were held back (latency skew).
func (f *FaultSpec) Held() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.helds
}

// Reordered reports how many message frames were emitted out of their
// write order by the reorder window.
func (f *FaultSpec) Reordered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reordered
}

// delayedFrame is a message frame withheld by Hold: it is released once
// `left` further message writes have passed it.
type delayedFrame struct {
	b    []byte
	left int
}

type faultConn struct {
	inner FrameConn
	spec  *FaultSpec

	// wmu serializes writes into the inner connection: the safety-flush
	// timer fires on its own goroutine and must not interleave with an
	// in-progress WriteFrame.
	wmu sync.Mutex

	mu      sync.Mutex
	held    [][]byte       // reorder window, oldest first
	delayed []delayedFrame // latency-skewed frames awaiting release
	timer   *time.Timer    // safety flush, armed while frames are withheld
}

func (c *faultConn) writeInner(b []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.inner.WriteFrame(b)
}

// armSafetyFlushLocked schedules the wall-clock flush if frames are
// withheld and no flush is pending. Called with c.mu held.
func (c *faultConn) armSafetyFlushLocked() {
	if c.timer != nil || (len(c.held) == 0 && len(c.delayed) == 0) {
		return
	}
	d := c.spec.MaxHold
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	c.timer = time.AfterFunc(d, func() {
		c.mu.Lock()
		c.timer = nil
		c.mu.Unlock()
		_ = c.flushAll()
	})
}

func (c *faultConn) ReadFrame() ([]byte, error) { return c.inner.ReadFrame() }

func (c *faultConn) WriteFrame(b []byte) error {
	if len(b) == 0 || b[0] != fMsg {
		if err := c.flushAll(); err != nil {
			return err
		}
		return c.writeInner(b)
	}
	src, dst, batch, err := decodeMsg(b)
	if err != nil || len(batch) == 0 {
		return c.writeInner(b)
	}
	// Frames carry one tag each on the send path; batch replays use the
	// first tag as the frame's identity.
	tag := batch[0].Tag
	s := c.spec
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[faultKey]int)
	}
	k := faultKey{src, dst, tag}
	s.counts[k]++
	occ := s.counts[k]
	drop := s.Drop != nil && s.Drop(src, dst, tag, occ)
	dup := !drop && s.Dup != nil && s.Dup(src, dst, tag, occ)
	hold := 0
	if !drop && s.Hold != nil {
		hold = s.Hold(src, dst, tag, occ)
	}
	if drop {
		s.dropped++
	}
	if dup {
		s.duped++
	}
	if hold > 0 {
		s.helds++
	}
	window := s.ReorderWindow
	s.mu.Unlock()

	// A message write ages every held-back frame; release the ones whose
	// budget is spent before this frame goes out (they were sent first).
	if ripe := c.ageDelayed(); len(ripe) > 0 {
		for _, f := range ripe {
			if err := c.writeInner(f); err != nil {
				return err
			}
		}
	}

	if drop {
		return nil
	}
	if hold > 0 {
		c.mu.Lock()
		c.delayed = append(c.delayed, delayedFrame{b: b, left: hold})
		c.armSafetyFlushLocked()
		c.mu.Unlock()
		return nil
	}
	writes := 1
	if dup {
		writes = 2
	}
	for i := 0; i < writes; i++ {
		if window < 2 {
			if err := c.writeInner(b); err != nil {
				return err
			}
			continue
		}
		c.mu.Lock()
		c.held = append(c.held, b)
		full := len(c.held) >= window
		if !full {
			c.armSafetyFlushLocked()
		}
		c.mu.Unlock()
		if full {
			if err := c.flushWindow(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ageDelayed decrements every held frame's remaining write budget and
// removes the ripe ones, returning them in original send order.
func (c *faultConn) ageDelayed() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ripe [][]byte
	kept := c.delayed[:0]
	for i := range c.delayed {
		c.delayed[i].left--
		if c.delayed[i].left <= 0 {
			ripe = append(ripe, c.delayed[i].b)
		} else {
			kept = append(kept, c.delayed[i])
		}
	}
	c.delayed = kept
	return ripe
}

// flushWindow emits the reorder window in reverse order.
func (c *faultConn) flushWindow() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	if len(held) > 1 {
		c.spec.mu.Lock()
		c.spec.reordered += len(held)
		c.spec.mu.Unlock()
	}
	for i := len(held) - 1; i >= 0; i-- {
		if err := c.writeInner(held[i]); err != nil {
			return err
		}
	}
	return nil
}

// flushAll releases every withheld frame: latency-skewed frames first (in
// send order), then the reorder window.
func (c *faultConn) flushAll() error {
	c.mu.Lock()
	delayed := c.delayed
	c.delayed = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.mu.Unlock()
	for _, f := range delayed {
		if err := c.writeInner(f.b); err != nil {
			return err
		}
	}
	return c.flushWindow()
}

// Close flushes every frame still withheld by the reorder window or a
// hold, then closes the inner connection if it supports closing. Without
// the flush, a link dropped mid-window would silently lose frames the
// sender believes it delivered — the replay buffer would never re-send
// them on a connection that is merely being torn down locally.
func (c *faultConn) Close() error {
	err := c.flushAll()
	if cl, ok := c.inner.(io.Closer); ok {
		if cerr := cl.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
