package transport

import "sync"

// FaultSpec injects frame-level faults into a client's link for tests:
// border-message (fMsg) frames can be dropped, duplicated, and reordered.
// Control frames (hello, store RPC, exit, …) always pass — the faults
// model a lossy message path, not a broken protocol.
//
// Predicates receive the message key and a 1-based occurrence count per
// (src, dst, tag), so a test can say "drop the first transmission of this
// border and nothing else" and stay fully deterministic. Counters live in
// the spec, not the connection: they keep counting across reconnects.
//
// ReorderWindow, when ≥ 2, holds back up to that many message frames and
// flushes them in reverse order. The window is flushed by any non-message
// frame (GC, checkpoint Put, Exit — all of which the grid app emits every
// checkpoint interval), which bounds how long a frame can be withheld and
// keeps the lockstep border exchange deadlock-free for windows up to the
// per-step send burst (2).
type FaultSpec struct {
	Drop          func(src, dst, tag int64, occurrence int) bool
	Dup           func(src, dst, tag int64, occurrence int) bool
	ReorderWindow int

	mu      sync.Mutex
	counts  map[faultKey]int
	dropped int
	duped   int
}

type faultKey struct{ src, dst, tag int64 }

// Wrap installs the fault injector on a connection; pass it as
// ClientConfig.Wrap.
func (f *FaultSpec) Wrap(inner FrameConn) FrameConn {
	return &faultConn{inner: inner, spec: f}
}

// Dropped reports how many message frames were dropped so far.
func (f *FaultSpec) Dropped() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Duplicated reports how many message frames were duplicated so far.
func (f *FaultSpec) Duplicated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.duped
}

type faultConn struct {
	inner FrameConn
	spec  *FaultSpec

	mu   sync.Mutex
	held [][]byte // reorder window, oldest first
}

func (c *faultConn) ReadFrame() ([]byte, error) { return c.inner.ReadFrame() }

func (c *faultConn) WriteFrame(b []byte) error {
	if len(b) == 0 || b[0] != fMsg {
		if err := c.flush(); err != nil {
			return err
		}
		return c.inner.WriteFrame(b)
	}
	src, dst, batch, err := decodeMsg(b)
	if err != nil || len(batch) == 0 {
		return c.inner.WriteFrame(b)
	}
	// Frames carry one tag each on the send path; batch replays use the
	// first tag as the frame's identity.
	tag := batch[0].Tag
	s := c.spec
	s.mu.Lock()
	if s.counts == nil {
		s.counts = make(map[faultKey]int)
	}
	k := faultKey{src, dst, tag}
	s.counts[k]++
	occ := s.counts[k]
	drop := s.Drop != nil && s.Drop(src, dst, tag, occ)
	dup := !drop && s.Dup != nil && s.Dup(src, dst, tag, occ)
	if drop {
		s.dropped++
	}
	if dup {
		s.duped++
	}
	window := s.ReorderWindow
	s.mu.Unlock()

	if drop {
		return nil
	}
	writes := 1
	if dup {
		writes = 2
	}
	for i := 0; i < writes; i++ {
		if window < 2 {
			if err := c.inner.WriteFrame(b); err != nil {
				return err
			}
			continue
		}
		c.mu.Lock()
		c.held = append(c.held, b)
		full := len(c.held) >= window
		c.mu.Unlock()
		if full {
			if err := c.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush emits the reorder window in reverse order.
func (c *faultConn) flush() error {
	c.mu.Lock()
	held := c.held
	c.held = nil
	c.mu.Unlock()
	for i := len(held) - 1; i >= 0; i-- {
		if err := c.inner.WriteFrame(held[i]); err != nil {
			return err
		}
	}
	return nil
}
