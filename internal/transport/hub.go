package transport

import (
	"crypto/sha256"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frame"
	"repro/internal/heap"
	"repro/internal/migrate"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/rt"
)

// Result is a node's final disposition as reported by its worker process.
type Result struct {
	Node   int64
	Status rt.Status
	Halt   int64
	Steps  uint64
	Rolls  uint64 // MSG_ROLL deliveries observed by the worker's router
	Err    string
}

// Hub is the cluster coordinator: the registry that maps node IDs to
// worker connections, the store-and-forward relay for border messages,
// the failure detector's mouthpiece (rollback-epoch broadcast), and the
// remote face of the shared checkpoint store.
type Hub struct {
	store migrate.Store
	ln    net.Listener

	// OnPut, when set before workers connect, observes every successful
	// checkpoint write with its per-name count — the hook failure plans
	// trigger on. Called without internal locks held.
	OnPut func(name string, count int)

	// Trace, when set before workers connect, records relay activity
	// (frame recv/send/replay, failure broadcasts, handoff relays) on the
	// "hub" stream. Hub events carry wall-clock ordering only — the hub
	// has no step counter; logical time lives in the workers' events.
	Trace *obs.Tracer

	chunks *chunkCache // content-addressed chunk cache for store streaming
	// chunksIn counts put chunks actually shipped by workers — the dedup
	// observability hook (announced-but-cached chunks never increment it).
	chunksIn atomic.Int64

	mu        sync.Mutex
	sessions  map[int64]*session
	buf       map[int64]map[int64]map[int64][]heap.Value // dst -> src -> tag -> words
	partCut   func(src, dst int64) bool                  // active partition, nil when healed
	partDsts  map[int64]bool                             // nodes with withheld inbound traffic
	epoch     int64
	failed    map[int64]bool
	results   map[int64]Result
	resCond   *sync.Cond
	putCounts map[string]int
	putHashes map[string][sha256.Size]byte
	relays    map[uint32]relayOrigin // hub-assigned migrate RPC id -> origin
	relayID   uint32
	closed    bool

	wg sync.WaitGroup
}

// relayOrigin remembers where to route a migrate acknowledgement back to.
type relayOrigin struct {
	sess *session
	id   uint32
}

// session is one worker connection. A session initially owns the node it
// sent in HELLO and can acquire more via OWN (cross-process handoff).
type session struct {
	hub  *Hub
	conn net.Conn
	fc   *frame.Conn

	wmu   sync.Mutex // serializes frame writes
	nodes []int64    // nodes registered through this session

	// puts holds in-progress chunked store writes. Only serve() touches
	// it (one reader goroutine per session), so no lock is needed; the
	// state dies with the session and the client retries from scratch.
	puts map[uint32]*pendingPut
}

// pendingPut is one chunked store write awaiting its missing chunks.
type pendingPut struct {
	name    string
	total   uint32
	hashes  []chunkHash
	chunks  [][]byte
	missing map[uint32]bool
}

// Listen starts a hub on addr ("host:0" picks a port) backed by store,
// which defaults to an in-memory store — production coordinators pass a
// DirStore on the shared mount.
func Listen(addr string, store migrate.Store) (*Hub, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := &Hub{
		store:     store,
		ln:        ln,
		chunks:    newChunkCache(1024),
		sessions:  make(map[int64]*session),
		buf:       make(map[int64]map[int64]map[int64][]heap.Value),
		failed:    make(map[int64]bool),
		results:   make(map[int64]Result),
		putCounts: make(map[string]int),
		putHashes: make(map[string][sha256.Size]byte),
		relays:    make(map[uint32]relayOrigin),
	}
	h.resCond = sync.NewCond(&h.mu)
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's listen address — what workers -join.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// ev returns the hub trace stream, nil when tracing is off.
func (h *Hub) ev() *obs.Stream {
	if h.Trace == nil {
		return nil
	}
	return h.Trace.Stream("hub")
}

// Store returns the backing checkpoint store (coordinator-side access).
func (h *Hub) Store() migrate.Store { return h.store }

// Epoch returns the current global rollback epoch.
func (h *Hub) Epoch() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.epoch
}

// SessionNodes returns the node IDs currently registered through live
// worker sessions, sorted. Coordinators and fault-injection tests use it
// to observe joins, kills and reconnects as events instead of sleeping.
func (h *Hub) SessionNodes() []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]int64, 0, len(h.sessions))
	for n := range h.sessions {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasSession reports whether a live worker session currently owns node.
func (h *Hub) HasSession(node int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[node] != nil
}

// BufferedTags returns the tags the hub's store-and-forward buffer holds
// for dst from src, sorted — an observable proxy for how far the sender
// has progressed (and what a rejoining dst would have replayed).
func (h *Hub) BufferedTags(dst, src int64) []int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	tags := h.buf[dst][src]
	out := make([]int64, 0, len(tags))
	for t := range tags {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h *Hub) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		s := &session{hub: h, conn: conn, fc: frame.NewConn(conn)}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			s.serve()
		}()
	}
}

// Close stops the hub: no new connections, all sessions dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	conns := h.liveConnsLocked()
	h.resCond.Broadcast()
	h.mu.Unlock()
	_ = h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
}

func (h *Hub) liveConnsLocked() []net.Conn {
	seen := make(map[net.Conn]bool)
	var out []net.Conn
	for _, s := range h.sessions {
		if !seen[s.conn] {
			seen[s.conn] = true
			out = append(out, s.conn)
		}
	}
	return out
}

// DropLinks abruptly closes every worker connection without failing any
// node — a network blip. Workers are expected to reconnect and replay;
// the keyed buffers on both sides make the blip invisible to the grid
// computation. Exposed for fault-injection tests.
func (h *Hub) DropLinks() {
	h.mu.Lock()
	conns := h.liveConnsLocked()
	h.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Fail declares a node failed: the global rollback epoch advances, every
// connected worker is told to observe MSG_ROLL, and the failed node's
// worker is ordered to die. The failed mark stands until a new
// incarnation of the node joins (resurrection HELLO clears it).
func (h *Hub) Fail(node int64) {
	h.mu.Lock()
	h.failed[node] = true
	h.epoch++
	epoch := h.epoch
	victim := h.sessions[node]
	sessions := h.sessionSetLocked()
	h.mu.Unlock()

	h.ev().Emit(obs.EvFail, int(node), uint64(epoch), 0, int64(len(sessions)), 0, "")
	roll := encodeEpoch(fRoll, epoch)
	for _, s := range sessions {
		if s == victim {
			continue
		}
		_ = s.write(roll)
	}
	if victim != nil {
		_ = victim.write(encodeNode(fFail, node))
	}
}

func (h *Hub) sessionSetLocked() []*session {
	seen := make(map[*session]bool)
	var out []*session
	for _, s := range h.sessions {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Partition installs a network cut between node sets a and b: message
// frames crossing the cut land in the hub's keyed store-and-forward buffer
// as usual but are not forwarded until HealPartition. Nothing is lost —
// the partition is a delay, exactly like a worker that is slow to rejoin,
// and the heal replays through the same keyed buffer a rejoin would.
func (h *Hub) Partition(a, b []int64) {
	inA := make(map[int64]bool, len(a))
	inB := make(map[int64]bool, len(b))
	for _, n := range a {
		inA[n] = true
	}
	for _, n := range b {
		inB[n] = true
	}
	h.mu.Lock()
	h.partCut = func(src, dst int64) bool {
		return (inA[src] && inB[dst]) || (inB[src] && inA[dst])
	}
	h.partDsts = make(map[int64]bool)
	h.mu.Unlock()
}

// HealPartition removes the cut and replays each affected destination's
// buffered frames to its live session — the same replay a reconnecting
// worker gets. Keyed idempotent delivery makes the re-send of frames that
// did arrive before the cut harmless.
func (h *Hub) HealPartition() {
	h.mu.Lock()
	h.partCut = nil
	dsts := h.partDsts
	h.partDsts = nil
	type replayTo struct {
		s      *session
		frames [][]byte
	}
	var replays []replayTo
	for dst := range dsts {
		if s := h.sessions[dst]; s != nil && !h.failed[dst] {
			replays = append(replays, replayTo{s, h.bufferedFramesLocked(dst)})
		}
	}
	h.mu.Unlock()
	for _, r := range replays {
		if len(r.frames) > 0 {
			h.ev().Emit(obs.EvFrameReplay, 0, 0, 0, int64(len(r.frames)), 0, "heal")
		}
		for _, f := range r.frames {
			_ = r.s.write(f)
		}
	}
}

// WaitResults blocks until n distinct nodes have reported final states or
// the timeout expires.
func (h *Hub) WaitResults(n int, timeout time.Duration) (map[int64]Result, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		h.mu.Lock()
		h.resCond.Broadcast()
		h.mu.Unlock()
	})
	defer timer.Stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.results) < n && !h.closed && time.Now().Before(deadline) {
		h.resCond.Wait()
	}
	out := make(map[int64]Result, len(h.results))
	for k, v := range h.results {
		out[k] = v
	}
	if len(out) < n {
		return out, fmt.Errorf("transport: %d of %d node results after %s", len(out), n, timeout)
	}
	return out, nil
}

// ClearResult forgets a node's reported result. The coordinator clears a
// node before resurrecting it when its old incarnation already reported
// (a kill that landed after the node finished), so WaitResults blocks
// until the fresh incarnation reports instead of returning a stale state.
func (h *Hub) ClearResult(node int64) {
	h.mu.Lock()
	delete(h.results, node)
	h.mu.Unlock()
}

// Results returns the node results reported so far.
func (h *Hub) Results() map[int64]Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[int64]Result, len(h.results))
	for k, v := range h.results {
		out[k] = v
	}
	return out
}

func (s *session) write(frameBytes []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.fc.WriteFrame(frameBytes)
}

func (s *session) serve() {
	defer s.close()
	for {
		b, err := s.fc.ReadFrame()
		if err != nil {
			return
		}
		if len(b) == 0 {
			continue
		}
		switch b[0] {
		case fHello:
			node, resurrect, err := decodeHello(b)
			if err != nil {
				return
			}
			s.hub.register(s, node, true, resurrect)
		case fOwn:
			node, err := decodeNode(b)
			if err != nil {
				return
			}
			s.hub.register(s, node, false, false)
		case fMsg:
			src, dst, batch, err := decodeMsg(b)
			if err != nil {
				return
			}
			s.hub.relayMsg(src, dst, batch, b)
		case fGC:
			node, below, err := decodeGC(b)
			if err != nil {
				return
			}
			s.hub.pruneBuf(node, below)
		case fPut:
			id, name, data, err := decodePut(b)
			if err != nil {
				return
			}
			s.hub.handlePut(s, id, name, data)
		case fGet:
			id, name, full, err := decodeGet(b)
			if err != nil {
				return
			}
			s.handleGet(id, name, full)
		case fPutC:
			id, name, total, hashes, err := decodePutC(b)
			if err != nil {
				return
			}
			s.handlePutC(id, name, total, hashes)
		case fChunk:
			id, index, data, err := decodeChunk(b)
			if err != nil {
				return
			}
			s.handleChunk(id, index, data)
		case fHashGet:
			id, hash, err := decodeHashGet(b)
			if err != nil {
				return
			}
			if data, ok := s.hub.chunks.get(hash); ok {
				_ = s.write(encodeData(id, "", data))
			} else {
				_ = s.write(encodeData(id, "transport: chunk not cached", nil))
			}
		case fList:
			id, err := decodeList(b)
			if err != nil {
				return
			}
			names, lerr := s.hub.store.List()
			_ = s.write(encodeNames(id, errString(lerr), names))
		case fExit:
			res, err := decodeExit(b)
			if err != nil {
				return
			}
			s.hub.recordResult(res)
		case fMigrate:
			id, src, dst, seen, image, err := decodeMigrate(b)
			if err != nil {
				return
			}
			s.hub.relayMigrate(s, id, src, dst, seen, image)
		case fAck:
			id, errStr, err := decodeAck(b)
			if err != nil {
				return
			}
			s.hub.relayMigrateAck(id, errStr)
		default:
			return // protocol violation: drop the session
		}
	}
}

// close unregisters every node this session owned. Losing a connection is
// NOT a node failure: the failure decision belongs to Fail (the paper's
// external failure detector) — a silently dropped worker keeps its state
// and may reconnect, at which point the buffered messages replay.
func (s *session) close() {
	_ = s.conn.Close()
	h := s.hub
	h.mu.Lock()
	for _, n := range s.nodes {
		if h.sessions[n] == s {
			delete(h.sessions, n)
		}
	}
	h.mu.Unlock()
}

// register installs a session as the owner of a node. hello sessions get
// a WELCOME with the current epoch; in both cases every buffered message
// for the node is replayed — the wire analogue of the mailbox a
// reconnecting or resurrected process would still own in-process. Only a
// resurrection clears a failed mark: anything else claiming a failed node
// is a zombie incarnation (the kill order may have been lost in a blip)
// and gets the kill repeated instead of being registered.
func (h *Hub) register(s *session, node int64, hello, resurrect bool) {
	h.mu.Lock()
	if h.failed[node] && !resurrect {
		epoch := h.epoch
		h.mu.Unlock()
		if hello {
			_ = s.write(encodeEpoch(fWelcome, epoch))
		}
		_ = s.write(encodeNode(fFail, node))
		return
	}
	if old := h.sessions[node]; old != nil && old != s {
		// A replaced incarnation's connection is stale; drop it.
		_ = old.conn.Close()
	}
	h.sessions[node] = s
	s.nodes = append(s.nodes, node)
	delete(h.failed, node) // the resurrected incarnation is alive
	epoch := h.epoch
	replay := h.bufferedFramesLocked(node)
	h.mu.Unlock()

	if hello {
		_ = s.write(encodeEpoch(fWelcome, epoch))
	}
	if len(replay) > 0 {
		h.ev().Emit(obs.EvFrameReplay, int(node), uint64(epoch), 0, int64(len(replay)), 0, "")
	}
	for _, f := range replay {
		_ = s.write(f)
	}
}

// bufferedFramesLocked encodes the keyed buffer for dst as MSG frames,
// one per source.
func (h *Hub) bufferedFramesLocked(dst int64) [][]byte {
	var out [][]byte
	for src, tags := range h.buf[dst] {
		batch := make([]msg.Batched, 0, len(tags))
		for tag, words := range tags {
			batch = append(batch, msg.Batched{Tag: tag, Words: words})
		}
		if len(batch) == 0 {
			continue
		}
		f, err := encodeMsg(src, dst, batch)
		if err == nil {
			out = append(out, f)
		}
	}
	return out
}

// relayMsg buffers a message batch (latest payload per key wins — the
// keyed idempotent contract) and forwards the original frame to the
// destination's live session, if any.
func (h *Hub) relayMsg(src, dst int64, batch []msg.Batched, raw []byte) {
	h.mu.Lock()
	bySrc := h.buf[dst]
	if bySrc == nil {
		bySrc = make(map[int64]map[int64][]heap.Value)
		h.buf[dst] = bySrc
	}
	tags := bySrc[src]
	if tags == nil {
		tags = make(map[int64][]heap.Value)
		bySrc[src] = tags
	}
	for _, b := range batch {
		cp := make([]heap.Value, len(b.Words))
		copy(cp, b.Words)
		tags[b.Tag] = cp
	}
	target := h.sessions[dst]
	if h.failed[dst] {
		target = nil // the node is dead; its resurrection will replay
	}
	if h.partCut != nil && h.partCut(src, dst) {
		target = nil // partitioned: buffered above, replayed at heal
		h.partDsts[dst] = true
	}
	h.mu.Unlock()
	if s := h.ev(); s != nil {
		s.Emit(obs.EvFrameRecv, int(src), 0, 0, dst, int64(len(batch)), "msg")
		if target != nil {
			s.Emit(obs.EvFrameSend, int(dst), 0, 0, src, int64(len(batch)), "msg")
		}
	}
	if target != nil {
		_ = target.write(raw)
	}
}

// pruneBuf drops buffered messages for node with tag < below (the
// receiver committed past them; it can never re-read their step).
func (h *Hub) pruneBuf(node, below int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, tags := range h.buf[node] {
		for tag := range tags {
			if tag < below {
				delete(tags, tag)
			}
		}
	}
}

// handleGet serves a store read: one plain frame for small payloads (or
// when the worker insists), a chunk manifest for large ones — the worker
// then fetches only the chunks its cache lacks (fHashGet).
func (s *session) handleGet(id uint32, name string, full bool) {
	data, err := s.hub.store.Get(name)
	if err != nil || full || len(data) <= chunkSize {
		_ = s.write(encodeData(id, errString(err), data))
		return
	}
	chunks, hashes, release := splitChunksPooled(data)
	defer release()
	for i, c := range chunks {
		s.hub.chunks.put(hashes[i], c)
	}
	_ = s.write(encodeManif(id, "", uint32(len(data)), hashes))
}

// handlePutC starts a chunked store write: chunks already in the content
// cache are taken from there; the worker is asked for the rest.
func (s *session) handlePutC(id uint32, name string, total uint32, hashes []chunkHash) {
	p := &pendingPut{
		name:    name,
		total:   total,
		hashes:  hashes,
		chunks:  make([][]byte, len(hashes)),
		missing: make(map[uint32]bool),
	}
	var need []uint32
	for i, h := range hashes {
		if data, ok := s.hub.chunks.get(h); ok {
			p.chunks[i] = data
		} else {
			p.missing[uint32(i)] = true
			need = append(need, uint32(i))
		}
	}
	if len(need) == 0 {
		s.finishPut(id, p)
		return
	}
	if s.puts == nil {
		s.puts = make(map[uint32]*pendingPut)
	}
	s.puts[id] = p
	_ = s.write(encodeNeed(id, "", need))
}

// handleChunk accepts one streamed put chunk; the last missing chunk
// completes the write.
func (s *session) handleChunk(id, index uint32, data []byte) {
	p := s.puts[id]
	if p == nil {
		_ = s.write(encodeAck(id, errNoChunkedPut))
		return
	}
	if int(index) >= len(p.hashes) || !p.missing[index] {
		delete(s.puts, id)
		_ = s.write(encodeAck(id, "transport: unexpected chunk index"))
		return
	}
	if sha256.Sum256(data) != p.hashes[index] {
		delete(s.puts, id)
		_ = s.write(encodeAck(id, "transport: chunk content hash mismatch"))
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	p.chunks[index] = cp
	// Cache each verified chunk immediately — not only at completion — so
	// a put restarted after a mid-flow reconnect re-ships nothing already
	// received (the re-announce's need-list hits the cache).
	s.hub.chunks.put(p.hashes[index], cp)
	s.hub.chunksIn.Add(1)
	delete(p.missing, index)
	if len(p.missing) == 0 {
		delete(s.puts, id)
		s.finishPut(id, p)
	}
}

// finishPut assembles a chunked write, populates the content cache, and
// funnels the payload through the ordinary put path (counting hooks,
// ack).
func (s *session) finishPut(id uint32, p *pendingPut) {
	data := make([]byte, 0, p.total)
	for i, c := range p.chunks {
		s.hub.chunks.put(p.hashes[i], c)
		data = append(data, c...)
	}
	if uint32(len(data)) != p.total {
		_ = s.write(encodeAck(id, "transport: chunked put size mismatch"))
		return
	}
	s.hub.handlePut(s, id, p.name, data)
}

func (h *Hub) handlePut(s *session, id uint32, name string, data []byte) {
	err := h.store.Put(name, data)
	count := 0
	var hook func(string, int)
	if err == nil {
		// An RPC retried across a reconnect re-delivers identical bytes;
		// counting it again would fire failure plans after fewer real
		// checkpoints than configured. Dedup by content hash (successive
		// genuine checkpoints always differ — the step counter is in the
		// image).
		sum := sha256.Sum256(data)
		h.mu.Lock()
		if prev, seen := h.putHashes[name]; !seen || prev != sum {
			h.putCounts[name]++
			h.putHashes[name] = sum
			count = h.putCounts[name]
			hook = h.OnPut
		}
		h.mu.Unlock()
	}
	_ = s.write(encodeAck(id, errString(err)))
	if hook != nil {
		hook(name, count)
	}
}

func (h *Hub) recordResult(res Result) {
	h.mu.Lock()
	h.results[res.Node] = res
	h.resCond.Broadcast()
	h.mu.Unlock()
}

// relayMigrate routes a cross-process node://K handoff to the session
// hosting K, rewriting the RPC id so the adopter's ack finds its way back
// to the migration source.
func (h *Hub) relayMigrate(origin *session, id uint32, src, dst, seen int64, image []byte) {
	h.mu.Lock()
	target := h.sessions[dst]
	var reason string
	switch {
	case h.failed[dst]:
		reason = fmt.Sprintf("node %d is failed", dst)
		target = nil
	case target == nil:
		reason = fmt.Sprintf("no worker hosts node %d", dst)
	}
	var hubID uint32
	if target != nil {
		h.relayID++
		hubID = h.relayID
		h.relays[hubID] = relayOrigin{sess: origin, id: id}
	}
	h.mu.Unlock()
	h.ev().Emit(obs.EvHandoff, int(src), 0, 0, dst, int64(len(image)), reason)
	if target == nil {
		_ = origin.write(encodeAck(id, "transport: "+reason))
		return
	}
	if err := target.write(encodeMigrate(hubID, src, dst, seen, image)); err != nil {
		h.mu.Lock()
		delete(h.relays, hubID)
		h.mu.Unlock()
		_ = origin.write(encodeAck(id, "transport: handoff delivery failed: "+err.Error()))
	}
}

func (h *Hub) relayMigrateAck(hubID uint32, errStr string) {
	h.mu.Lock()
	origin, ok := h.relays[hubID]
	delete(h.relays, hubID)
	h.mu.Unlock()
	if ok {
		_ = origin.sess.write(encodeAck(origin.id, errStr))
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
