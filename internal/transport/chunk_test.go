package transport

import (
	"bytes"
	"fmt"
	"testing"
)

// smallChunks shrinks the streaming granularity so a few KiB exercises
// multi-chunk flows.
func smallChunks(t *testing.T, size int) {
	t.Helper()
	old := chunkSize
	chunkSize = size
	t.Cleanup(func() { chunkSize = old })
}

// chunkPayload builds a payload of n distinct 64-byte blocks.
func chunkPayload(n int, tag byte) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&buf, "[%c block %06d padpadpadpadpadpadpadpadpadpadpadpadpadpad]\n", tag, i)
	}
	return buf.Bytes()
}

// TestChunkedPutGetRoundTrip: a payload larger than the chunk size
// travels the chunked path and comes back byte-identical, both through
// the worker's Get and the hub's local store.
func TestChunkedPutGetRoundTrip(t *testing.T) {
	smallChunks(t, 256)
	h := newHub(t)
	_, c := joinNode(t, h, 1, ClientConfig{})
	store := c.RemoteStore()

	data := chunkPayload(40, 'a') // ~2.5 KiB, ~10 chunks
	if err := store.Put("big", data); err != nil {
		t.Fatal(err)
	}
	hubCopy, err := h.Store().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hubCopy, data) {
		t.Fatal("hub store holds different bytes than were put")
	}
	back, err := store.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("chunked get returned different bytes")
	}
	// Small payloads keep the plain single-frame path.
	if err := store.Put("small", []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	small, err := store.Get("small")
	if err != nil || string(small) != "tiny" {
		t.Fatalf("small payload: %q %v", small, err)
	}
}

// TestChunkedPutDedup: re-putting overlapping content ships only the
// chunks the hub has not seen — the content-hash dedup the incremental
// checkpoint pipeline leans on for its periodic full images.
func TestChunkedPutDedup(t *testing.T) {
	smallChunks(t, 256)
	h := newHub(t)
	_, c := joinNode(t, h, 1, ClientConfig{})
	store := c.RemoteStore()

	data := chunkPayload(64, 'a')
	if err := store.Put("ck@0", data); err != nil {
		t.Fatal(err)
	}
	shipped := h.chunksIn.Load()
	if shipped == 0 {
		t.Fatal("first put shipped no chunks — not on the chunked path?")
	}

	// Identical content under a new name: nothing new crosses the wire.
	if err := store.Put("ck@1", data); err != nil {
		t.Fatal(err)
	}
	if again := h.chunksIn.Load(); again != shipped {
		t.Fatalf("identical re-put shipped %d chunks, want 0", again-shipped)
	}

	// A payload sharing a long prefix ships only the changed tail.
	changed := append(bytes.Clone(data[:len(data)-100]), chunkPayload(4, 'b')...)
	if err := store.Put("ck@2", changed); err != nil {
		t.Fatal(err)
	}
	delta := h.chunksIn.Load() - shipped
	if delta == 0 || delta > 4 {
		t.Fatalf("prefix-sharing put shipped %d chunks, want 1..4", delta)
	}
	back, err := store.Get("ck@2")
	if err != nil || !bytes.Equal(back, changed) {
		t.Fatalf("changed payload did not round-trip (%v)", err)
	}
}

// TestChunkedGetUsesCache: a second worker reading chunks it already
// holds fetches none of them again (per-chunk fetches go through
// fHashGet, whose replies populate the local cache).
func TestChunkedGetUsesCache(t *testing.T) {
	smallChunks(t, 256)
	h := newHub(t)
	_, c1 := joinNode(t, h, 1, ClientConfig{})
	_, c2 := joinNode(t, h, 2, ClientConfig{})

	data := chunkPayload(64, 'c')
	if err := c1.RemoteStore().Put("ck", data); err != nil {
		t.Fatal(err)
	}
	// Worker 2 never wrote the data: its first read fetches chunks.
	back, err := c2.RemoteStore().Get("ck")
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("first read: %v", err)
	}
	// Its second read assembles purely from cache: no new fetches means
	// no RPC failures even if the hub's chunk cache were dropped.
	back2, err := c2.RemoteStore().Get("ck")
	if err != nil || !bytes.Equal(back2, data) {
		t.Fatalf("second read: %v", err)
	}
}
