package transport

import (
	"testing"
	"time"
)

// TestBackoffWindowGrowsAndCaps: with a worst-case rng (always the top of
// the window), the schedule doubles from RetryBase and saturates at
// RetryMax — the uncapped runaway that motivated the fix is gone.
func TestBackoffWindowGrowsAndCaps(t *testing.T) {
	top := func(n int64) int64 { return n - 1 } // deterministic: window top
	base := 25 * time.Millisecond
	max := 200 * time.Millisecond
	want := []time.Duration{
		25 * time.Millisecond,  // attempt 1: window = base
		50 * time.Millisecond,  // attempt 2
		100 * time.Millisecond, // attempt 3
		200 * time.Millisecond, // attempt 4: capped
		200 * time.Millisecond, // attempt 5: stays capped
		200 * time.Millisecond, // attempt 6
	}
	for i, w := range want {
		got := backoffDelay(i+1, base, max, top)
		if got != w-1 { // rng returns window-1 (top of [0, window))
			t.Errorf("attempt %d: delay %v, want window top %v", i+1, got, w-1)
		}
	}
}

// TestBackoffFullJitterBounds: every sampled delay lies in [0, window),
// and the samples are not all equal — the schedule is actually jittered,
// not a fixed ladder that stampedes in lockstep.
func TestBackoffFullJitterBounds(t *testing.T) {
	base := 10 * time.Millisecond
	max := 80 * time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		window := base << uint(attempt-1)
		if window > max {
			window = max
		}
		seen := make(map[time.Duration]bool)
		for i := 0; i < 64; i++ {
			d := backoffDelay(attempt, base, max, pseudoRand(int64(attempt*1000+i)))
			if d < 0 || d >= window {
				t.Fatalf("attempt %d sample %d: delay %v outside [0, %v)", attempt, i, d, window)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Errorf("attempt %d: all 64 samples identical (%v) — no jitter", attempt, firstKey(seen))
		}
	}
}

// TestBackoffOverflowSaturates: a pathological attempt count cannot
// overflow the window into a negative (or zero) sleep.
func TestBackoffOverflowSaturates(t *testing.T) {
	top := func(n int64) int64 { return n - 1 }
	max := time.Second
	for _, attempt := range []int{40, 63, 64, 100} {
		got := backoffDelay(attempt, 25*time.Millisecond, max, top)
		if got != max-1 {
			t.Errorf("attempt %d: delay %v, want saturated window top %v", attempt, got, max-1)
		}
	}
}

// pseudoRand builds a deterministic rand.Int63n-shaped sampler from a
// seed (a tiny LCG — no shared state, safe for parallel tests).
func pseudoRand(seed int64) func(int64) int64 {
	state := seed*6364136223846793005 + 1442695040888963407
	return func(n int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := state >> 1
		if v < 0 {
			v = -v
		}
		return v % n
	}
}

func firstKey(m map[time.Duration]bool) time.Duration {
	for k := range m {
		return k
	}
	return 0
}
