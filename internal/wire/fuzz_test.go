package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to every decoder entry point: a
// checkpoint file read off the shared store (or a migration frame off the
// network) is attacker-controlled input, so malformed, truncated or
// bit-flipped images must come back as errors — never a panic, and never
// an allocation sized off an unvalidated count. Decoded images are
// re-encoded and re-decoded to check the accepted subset round-trips.
func FuzzWireDecode(f *testing.F) {
	img := sampleImage()
	whole := EncodeImage(img)
	f.Add(whole)
	f.Add(EncodeCode(&img.Code))
	f.Add(EncodeState(&img.State))
	f.Add([]byte(ExecHeader))
	f.Add([]byte{})
	// A truncated and a bit-flipped image seed the interesting corners.
	f.Add(whole[:len(whole)/2])
	flipped := bytes.Clone(whole)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	// Delta-image frames: whole, truncated, bit-flipped, plus a head ref.
	delta := EncodeDeltaImage(sampleDelta())
	f.Add(delta)
	f.Add(delta[:len(delta)/2])
	dflipped := bytes.Clone(delta)
	dflipped[2*len(dflipped)/3] ^= 0x04
	f.Add(dflipped)
	f.Add(EncodeRef("name@3"))
	f.Add([]byte(DeltaHeader))
	f.Add([]byte(RefHeader))

	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := DecodeCode(data); err == nil {
			back, err := DecodeCode(EncodeCode(c))
			if err != nil {
				t.Fatalf("re-decode of accepted code part failed: %v", err)
			}
			if back.Name != c.Name || back.Label != c.Label || len(back.Args) != len(c.Args) {
				t.Fatalf("code part did not round-trip: %+v vs %+v", back, c)
			}
		}
		if s, err := DecodeState(data); err == nil {
			if _, err := DecodeState(EncodeState(s)); err != nil {
				t.Fatalf("re-decode of accepted state part failed: %v", err)
			}
		}
		if img, err := DecodeImage(data); err == nil {
			if _, err := DecodeImage(EncodeImage(img)); err != nil {
				t.Fatalf("re-decode of accepted image failed: %v", err)
			}
		}
		if d, err := DecodeDeltaImage(data); err == nil {
			back, err := DecodeDeltaImage(EncodeDeltaImage(d))
			if err != nil {
				t.Fatalf("re-decode of accepted delta image failed: %v", err)
			}
			if back.Base != d.Base || back.Seq != d.Seq ||
				len(back.Delta.Changed) != len(d.Delta.Changed) ||
				len(back.Delta.Freed) != len(d.Delta.Freed) {
				t.Fatalf("delta image did not round-trip: %+v vs %+v", back, d)
			}
		}
		if target, ok := DecodeRef(data); ok {
			if back, ok2 := DecodeRef(EncodeRef(target)); !ok2 || back != target {
				t.Fatalf("ref did not round-trip: %q", target)
			}
		}
	})
}
