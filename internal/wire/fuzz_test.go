package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecode feeds arbitrary bytes to every decoder entry point: a
// checkpoint file read off the shared store (or a migration frame off the
// network) is attacker-controlled input, so malformed, truncated or
// bit-flipped images must come back as errors — never a panic, and never
// an allocation sized off an unvalidated count. Decoded images are
// re-encoded and re-decoded to check the accepted subset round-trips.
func FuzzWireDecode(f *testing.F) {
	img := sampleImage()
	whole := EncodeImage(img)
	f.Add(whole)
	f.Add(EncodeCode(&img.Code))
	f.Add(EncodeState(&img.State))
	f.Add([]byte(ExecHeader))
	f.Add([]byte{})
	// A truncated and a bit-flipped image seed the interesting corners.
	f.Add(whole[:len(whole)/2])
	flipped := bytes.Clone(whole)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if c, err := DecodeCode(data); err == nil {
			back, err := DecodeCode(EncodeCode(c))
			if err != nil {
				t.Fatalf("re-decode of accepted code part failed: %v", err)
			}
			if back.Name != c.Name || back.Label != c.Label || len(back.Args) != len(c.Args) {
				t.Fatalf("code part did not round-trip: %+v vs %+v", back, c)
			}
		}
		if s, err := DecodeState(data); err == nil {
			if _, err := DecodeState(EncodeState(s)); err != nil {
				t.Fatalf("re-decode of accepted state part failed: %v", err)
			}
		}
		if img, err := DecodeImage(data); err == nil {
			if _, err := DecodeImage(EncodeImage(img)); err != nil {
				t.Fatalf("re-decode of accepted image failed: %v", err)
			}
		}
	})
}
