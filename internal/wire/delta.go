// Delta images: the incremental half of the checkpoint pipeline. A delta
// image names its base checkpoint (the previous member of a chain whose
// root is a full Image) and carries only the heap entries dirtied since
// that base, chunked so corruption is detected per chunk. Rebuild applies
// a chain of deltas to its full base and returns an Image bit-identical
// to the full checkpoint that would have been written at the same moment.
// Old full images remain readable unchanged; a head "ref" record is the
// tiny durability watermark the committer publishes last.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"

	"repro/internal/heap"
	"repro/internal/spec"
)

const (
	deltaMagic = "MCCDEL"
	// DeltaHeader prefixes delta checkpoint files the way ExecHeader
	// prefixes full ones.
	DeltaHeader = "#!mcc-dlt\n"
	// RefHeader prefixes a head record: a one-line pointer naming the chain
	// member that is the last durable checkpoint. It is written only after
	// that member's payload is durable, so readers of the head name never
	// observe an in-flight checkpoint.
	RefHeader = "#!mcc-ref\n"

	// chunkEntries bounds how many changed entries share one CRC-protected
	// chunk of a delta image.
	chunkEntries = 256
)

// DeltaImage is an incremental checkpoint: everything needed to advance a
// reconstructed Image from the chain member named Base to this checkpoint.
type DeltaImage struct {
	// Base is the store name of the previous chain member (a full image
	// for the first delta, otherwise the preceding delta).
	Base string
	// Seq is this checkpoint's position in its chain (the full base is 0).
	Seq int
	// Code is the checkpoint's code part. Program may be empty when it is
	// byte-identical to the base's program — the common case, since a
	// process cannot change its own code — and is then taken from the
	// chain's full base on rebuild.
	Code CodePart
	// Delta is the heap change set since Base.
	Delta heap.DeltaSnapshot
	// Conts is the complete speculation continuation stack (small; not
	// diffed).
	Conts []spec.Continuation
}

// EncodeRef serializes a head record pointing at a chain member.
func EncodeRef(target string) []byte {
	return []byte(RefHeader + target)
}

// DecodeRef reports whether data is a head record and, if so, the chain
// member it points at.
func DecodeRef(data []byte) (string, bool) {
	if !bytes.HasPrefix(data, []byte(RefHeader)) {
		return "", false
	}
	target := string(data[len(RefHeader):])
	if target == "" || strings.ContainsAny(target, "\n\r") {
		return "", false
	}
	return target, true
}

// IsDeltaImage reports whether data starts like a delta checkpoint file.
func IsDeltaImage(data []byte) bool {
	return bytes.HasPrefix(data, []byte(DeltaHeader))
}

// IsImage reports whether data starts like a full checkpoint file.
func IsImage(data []byte) bool {
	return bytes.HasPrefix(data, []byte(ExecHeader))
}

// IsRefHeader reports whether data claims to be a head record (whether
// or not the record decodes — DecodeRef validates the target).
func IsRefHeader(data []byte) bool {
	return bytes.HasPrefix(data, []byte(RefHeader))
}

// encodeDeltaPart serializes the delta-specific payload (everything but
// the code part).
func encodeDeltaPart(d *DeltaImage) []byte {
	e := &enc{}
	e.buf.WriteString(deltaMagic)
	e.buf.WriteByte(version)
	e.str(d.Base)
	e.u(uint64(d.Seq))
	e.u(uint64(d.Delta.TableLen))

	// Changed entries travel in CRC-protected chunks so a corrupt or
	// truncated region is pinpointed without trusting the rest.
	nChunks := (len(d.Delta.Changed) + chunkEntries - 1) / chunkEntries
	e.u(uint64(nChunks))
	for c := 0; c < nChunks; c++ {
		lo := c * chunkEntries
		hi := lo + chunkEntries
		if hi > len(d.Delta.Changed) {
			hi = len(d.Delta.Changed)
		}
		ce := &enc{}
		ce.u(uint64(hi - lo))
		for _, en := range d.Delta.Changed[lo:hi] {
			ce.i(en.Idx)
			ce.u(uint64(en.Level))
			ce.values(en.Words)
		}
		e.bytes(ce.finish()) // finish() appends the chunk's own CRC-32
	}

	e.u(uint64(len(d.Delta.Freed)))
	for _, idx := range d.Delta.Freed {
		e.i(idx)
	}
	e.u(uint64(len(d.Delta.Levels)))
	for _, lv := range d.Delta.Levels {
		e.u(uint64(len(lv.Shadows)))
		for _, sh := range lv.Shadows {
			e.i(sh.Idx)
			e.u(uint64(sh.OldLevel))
			e.values(sh.Words)
		}
		e.u(uint64(len(lv.Allocs)))
		for _, a := range lv.Allocs {
			e.i(a)
		}
	}
	e.u(uint64(len(d.Conts)))
	for _, c := range d.Conts {
		e.i(c.FnIndex)
		e.values(c.Args)
	}
	return e.finish()
}

// decodeDeltaPart parses the delta-specific payload.
func decodeDeltaPart(data []byte) (*DeltaImage, error) {
	d, err := newDec(data, deltaMagic)
	if err != nil {
		return nil, err
	}
	out := &DeltaImage{}
	out.Base = d.str()
	out.Seq = int(d.u())
	out.Delta.TableLen = int(d.u())

	nChunks := d.count()
	for c := 0; c < nChunks && d.err == nil; c++ {
		chunk := d.blob()
		if d.err != nil {
			break
		}
		if len(chunk) < 4 {
			return nil, fmt.Errorf("wire: delta chunk %d truncated", c)
		}
		body, tail := chunk[:len(chunk)-4], chunk[len(chunk)-4:]
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
			return nil, fmt.Errorf("wire: delta chunk %d: %w", c, ErrChecksum)
		}
		cd := &dec{data: body}
		ne := cd.count()
		for i := 0; i < ne && cd.err == nil; i++ {
			en := heap.EntrySnap{Idx: cd.i(), Level: int(cd.u())}
			en.Words = cd.values()
			out.Delta.Changed = append(out.Delta.Changed, en)
		}
		if err := cd.done(); err != nil {
			return nil, fmt.Errorf("wire: delta chunk %d: %w", c, err)
		}
	}

	nf := d.count()
	for i := 0; i < nf && d.err == nil; i++ {
		out.Delta.Freed = append(out.Delta.Freed, d.i())
	}
	nl := d.count()
	for i := 0; i < nl && d.err == nil; i++ {
		lv := heap.LevelSnap{}
		ns := d.count()
		for j := 0; j < ns && d.err == nil; j++ {
			sh := heap.ShadowSnap{Idx: d.i(), OldLevel: int(d.u())}
			sh.Words = d.values()
			lv.Shadows = append(lv.Shadows, sh)
		}
		na := d.count()
		for j := 0; j < na && d.err == nil; j++ {
			lv.Allocs = append(lv.Allocs, d.i())
		}
		out.Delta.Levels = append(out.Delta.Levels, lv)
	}
	nc := d.count()
	for i := 0; i < nc && d.err == nil; i++ {
		c := spec.Continuation{FnIndex: d.i()}
		c.Args = d.values()
		out.Conts = append(out.Conts, c)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeDeltaImage serializes a delta checkpoint file: the delta header
// followed by length-prefixed code and delta parts (mirroring
// EncodeImage's layout).
func EncodeDeltaImage(d *DeltaImage) []byte {
	code := EncodeCode(&d.Code)
	delta := encodeDeltaPart(d)
	var buf bytes.Buffer
	buf.Grow(len(DeltaHeader) + 8 + len(code) + len(delta))
	buf.WriteString(DeltaHeader)
	var lens [8]byte
	binary.BigEndian.PutUint32(lens[:4], uint32(len(code)))
	buf.Write(lens[:4])
	buf.Write(code)
	binary.BigEndian.PutUint32(lens[4:], uint32(len(delta)))
	buf.Write(lens[4:])
	buf.Write(delta)
	return buf.Bytes()
}

// DecodeDeltaImage parses a delta checkpoint file.
func DecodeDeltaImage(data []byte) (*DeltaImage, error) {
	if len(data) < len(DeltaHeader)+8 {
		return nil, ErrTruncated
	}
	if !IsDeltaImage(data) {
		return nil, ErrBadMagic
	}
	rest := data[len(DeltaHeader):]
	if len(rest) < 4 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) < n {
		return nil, ErrTruncated
	}
	code, err := DecodeCode(rest[:n])
	if err != nil {
		return nil, err
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, ErrTruncated
	}
	m := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) != m {
		return nil, ErrTruncated
	}
	out, err := decodeDeltaPart(rest)
	if err != nil {
		return nil, err
	}
	out.Code = *code
	return out, nil
}

// RebuildImage reconstructs the full Image a delta chain describes: the
// chain's full base, then each delta applied oldest-first. The result is
// bit-equivalent to the full checkpoint the last delta's capture would
// have produced.
func RebuildImage(base *Image, deltas ...*DeltaImage) (*Image, error) {
	if base == nil {
		return nil, fmt.Errorf("wire: rebuild needs a full base image")
	}
	if len(deltas) == 0 {
		cp := *base
		return &cp, nil
	}
	heapDeltas := make([]*heap.DeltaSnapshot, len(deltas))
	for i, d := range deltas {
		heapDeltas[i] = &d.Delta
	}
	snap, err := heap.RebuildSnapshot(base.State.Heap, heapDeltas...)
	if err != nil {
		return nil, err
	}
	last := deltas[len(deltas)-1]
	out := &Image{
		Code:  last.Code,
		State: StatePart{Heap: snap, Conts: last.Conts},
	}
	if len(out.Code.Program) == 0 {
		out.Code.Program = base.Code.Program
	}
	return out, nil
}
