package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/heap"
	"repro/internal/spec"
)

func sampleDelta() *DeltaImage {
	code := sampleImage().Code
	code.Program = nil // unchanged from the base
	code.Label = 13
	return &DeltaImage{
		Base: "grid-ck-1@4",
		Seq:  5,
		Code: code,
		Delta: heap.DeltaSnapshot{
			TableLen: 18,
			Changed: []heap.EntrySnap{
				{Idx: 1, Level: 0, Words: []heap.Value{heap.IntVal(7)}},
				{Idx: 3, Level: 1, Words: []heap.Value{heap.PtrVal(1, 0), heap.FloatVal(-0.5)}},
				{Idx: 17, Level: 0, Words: []heap.Value{heap.FunVal(2)}},
			},
			Freed: []int64{0},
			Levels: []heap.LevelSnap{
				{
					Shadows: []heap.ShadowSnap{{Idx: 3, OldLevel: 0, Words: []heap.Value{heap.IntVal(0), heap.IntVal(0)}}},
					Allocs:  []int64{17},
				},
			},
		},
		Conts: []spec.Continuation{{FnIndex: 4, Args: []heap.Value{heap.IntVal(1)}}},
	}
}

func TestDeltaImageRoundTrip(t *testing.T) {
	d := sampleDelta()
	data := EncodeDeltaImage(d)
	if !IsDeltaImage(data) {
		t.Fatal("encoded delta not recognized")
	}
	back, err := DecodeDeltaImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Base != d.Base || back.Seq != d.Seq || back.Code.Label != d.Code.Label {
		t.Fatalf("header did not round-trip: %+v", back)
	}
	if len(back.Delta.Changed) != len(d.Delta.Changed) || len(back.Delta.Freed) != len(d.Delta.Freed) {
		t.Fatalf("delta body did not round-trip: %+v", back.Delta)
	}
	for i, e := range back.Delta.Changed {
		want := d.Delta.Changed[i]
		if e.Idx != want.Idx || e.Level != want.Level || len(e.Words) != len(want.Words) {
			t.Fatalf("changed entry %d: %+v want %+v", i, e, want)
		}
		for j := range e.Words {
			if !e.Words[j].Equal(want.Words[j]) {
				t.Fatalf("changed entry %d word %d: %s want %s", i, j, e.Words[j], want.Words[j])
			}
		}
	}
	// Re-encode must be byte-identical (canonical encoding).
	if !bytes.Equal(EncodeDeltaImage(back), data) {
		t.Fatal("re-encode of decoded delta differs")
	}
}

// TestDeltaImageManyChunks covers the multi-chunk path: more changed
// entries than fit one chunk.
func TestDeltaImageManyChunks(t *testing.T) {
	d := sampleDelta()
	d.Delta.Changed = nil
	for i := 0; i < 3*chunkEntries+7; i++ {
		d.Delta.Changed = append(d.Delta.Changed, heap.EntrySnap{
			Idx: int64(i), Words: []heap.Value{heap.IntVal(int64(i))},
		})
	}
	d.Delta.TableLen = len(d.Delta.Changed) + 1
	back, err := DecodeDeltaImage(EncodeDeltaImage(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Delta.Changed) != len(d.Delta.Changed) {
		t.Fatalf("decoded %d changed entries, want %d", len(back.Delta.Changed), len(d.Delta.Changed))
	}
	for i, e := range back.Delta.Changed {
		if e.Idx != int64(i) || !e.Words[0].Equal(heap.IntVal(int64(i))) {
			t.Fatalf("entry %d corrupted: %+v", i, e)
		}
	}
}

// TestDeltaImageRejectsCorruption flips or truncates every region of an
// encoded delta and requires an error (never a panic, never silent
// acceptance of changed bytes).
func TestDeltaImageRejectsCorruption(t *testing.T) {
	data := EncodeDeltaImage(sampleDelta())
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := DecodeDeltaImage(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pos := len(DeltaHeader) + rng.Intn(len(data)-len(DeltaHeader))
		flipped := bytes.Clone(data)
		flipped[pos] ^= 1 << rng.Intn(8)
		if back, err := DecodeDeltaImage(flipped); err == nil {
			// A flip inside a length prefix could relocate both parts and
			// still checksum correctly only if contents are equal — require
			// exact equality with the original in that case.
			if !bytes.Equal(EncodeDeltaImage(back), data) {
				t.Fatalf("bit flip at %d silently accepted", pos)
			}
		}
	}
}

// TestDeltaImageCorruptChunk corrupts bytes inside one entry chunk and
// checks the error names the chunk-level checksum, proving per-chunk
// integrity (not just the outer CRC) guards entry data.
func TestDeltaImageCorruptChunk(t *testing.T) {
	d := sampleDelta()
	raw := encodeDeltaPart(d)
	// Flip a byte mid-payload and fix up the OUTER checksum so only the
	// chunk CRC can catch it.
	body := bytes.Clone(raw[:len(raw)-4])
	body[len(body)/2] ^= 0x10
	e := &enc{}
	e.buf.Write(body)
	patched := e.finish()
	if _, err := decodeDeltaPart(patched); err == nil {
		t.Fatal("corrupt chunk accepted")
	} else if !errors.Is(err, ErrChecksum) && err.Error() == "" {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRefRoundTrip(t *testing.T) {
	data := EncodeRef("grid-ck-0@9")
	target, ok := DecodeRef(data)
	if !ok || target != "grid-ck-0@9" {
		t.Fatalf("ref did not round-trip: %q %v", target, ok)
	}
	if _, ok := DecodeRef([]byte(RefHeader)); ok {
		t.Fatal("empty ref accepted")
	}
	if _, ok := DecodeRef([]byte("#!mcc-run\nxyz")); ok {
		t.Fatal("full image accepted as ref")
	}
	if IsDeltaImage(data) {
		t.Fatal("ref mistaken for delta")
	}
}

// TestRebuildImage applies a chain captured from a real tracked heap and
// requires bit-exact equality with the full snapshot.
func TestRebuildImage(t *testing.T) {
	h := heap.New(heap.Config{TrackDirty: true})
	var roots []heap.Value
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range roots {
			yield(v)
		}
	})
	a, _ := h.Alloc(4)
	b, _ := h.Alloc(2)
	roots = append(roots, a, b)
	_ = h.Store(a, 0, heap.IntVal(1))

	base := &Image{
		Code:  CodePart{Name: "p", Program: []byte("prog-bytes"), Label: 1, TableLen: h.TableLen()},
		State: StatePart{Heap: h.Snapshot()},
	}
	h.MarkSnapshotBase()

	// Two rounds of mutation → two chained deltas.
	_ = h.Store(a, 1, heap.IntVal(2))
	c, _ := h.Alloc(1)
	roots = append(roots, c)
	d1 := &DeltaImage{Base: "n@0", Seq: 1, Code: CodePart{Name: "p", Label: 2}, Delta: *h.SnapshotDelta()}

	_ = h.Store(b, 0, heap.FloatVal(3.5))
	roots = roots[:2] // drop c
	h.CollectMajor()  // frees c: the delta must carry the free
	d2 := &DeltaImage{Base: "n@1", Seq: 2, Code: CodePart{Name: "p", Label: 3}, Delta: *h.SnapshotDelta()}

	full := h.Snapshot()
	got, err := RebuildImage(base, d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.State.Heap.Equal(full) {
		t.Fatal("rebuilt heap snapshot diverges from full snapshot")
	}
	if got.Code.Label != 3 {
		t.Fatalf("rebuilt code label %d, want the last delta's", got.Code.Label)
	}
	if string(got.Code.Program) != "prog-bytes" {
		t.Fatal("program not inherited from the base")
	}
	// Encode/decode the chain members and rebuild again: identical.
	b1, err := DecodeDeltaImage(EncodeDeltaImage(d1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := DecodeDeltaImage(EncodeDeltaImage(d2))
	if err != nil {
		t.Fatal(err)
	}
	baseBack, err := DecodeImage(EncodeImage(base))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := RebuildImage(baseBack, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.State.Heap.Equal(full) {
		t.Fatal("rebuilt-after-wire heap snapshot diverges")
	}
}
