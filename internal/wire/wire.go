// Package wire defines the canonical, architecture-independent binary
// encoding of a packed MCC process image (§4.2.2). An image has two parts,
// mirroring the paper's two-phase migrate protocol:
//
//   - the code part — FIR program, resume label, pointer-table and heap
//     sizes, and the index of the migrate_env block holding the live
//     variables — which the target decodes, type-checks and recompiles
//     before anything else is sent;
//   - the state part — the heap snapshot (blocks, checkpoint records,
//     speculation levels) and the saved speculation continuations — which
//     the target uses to reconstruct the heap and resume.
//
// Everything is explicit varints or big-endian fixed-width words, so the
// encoding is identical on every architecture; integrity is protected by a
// trailing CRC-32 on each part.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"repro/internal/heap"
	"repro/internal/spec"
)

const (
	codeMagic = "MCCCOD"
	statMagic = "MCCSTA"
	// ExecHeader prefixes checkpoint files: the paper formats checkpoints
	// as executable files so a resurrection daemon can simply execute the
	// saved checkpoint.
	ExecHeader = "#!mcc-run\n"
	version    = 1
)

// CodePart is the first transmission of a migration: everything the target
// needs to verify and recompile the program.
type CodePart struct {
	// Name identifies the process.
	Name string
	// Program is the canonical FIR encoding (fir.EncodeProgram).
	Program []byte
	// Label is the migrate label i identifying the migration point.
	Label int
	// EnvIndex is the pointer-table index of the migrate_env block holding
	// the function value and live variables to resume with.
	EnvIndex int64
	// TableLen and HeapWords announce the sizes of the pointer table and
	// heap ("size of heap and pointer tables", §4.2.2) so the target can
	// pre-size its arena.
	TableLen  int
	HeapWords int
	// Args and Seed carry the process arguments and PRNG seed so externs
	// behave identically after resumption.
	Args []int64
	Seed int64
}

// StatePart is the second transmission: heap contents and speculation
// continuations.
type StatePart struct {
	Heap  *heap.Snapshot
	Conts []spec.Continuation
}

// Image is a complete packed process (both parts), the unit stored in
// checkpoint files.
type Image struct {
	Code  CodePart
	State StatePart
}

// Errors returned by decoding.
var (
	ErrChecksum  = errors.New("wire: checksum mismatch")
	ErrTruncated = errors.New("wire: truncated input")
	ErrBadMagic  = errors.New("wire: bad magic")
)

type enc struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *enc) u(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *enc) i(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *enc) bytes(b []byte) {
	e.u(uint64(len(b)))
	e.buf.Write(b)
}

func (e *enc) f64(f float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(f))
	e.buf.Write(b[:])
}

func (e *enc) value(v heap.Value) {
	e.buf.WriteByte(byte(v.Kind))
	switch v.Kind {
	case heap.KInt, heap.KFun:
		e.i(v.I)
	case heap.KFloat:
		e.f64(v.F)
	case heap.KPtr:
		e.i(v.I)
		e.i(v.Off)
	}
}

func (e *enc) values(vs []heap.Value) {
	e.u(uint64(len(vs)))
	for _, v := range vs {
		e.value(v)
	}
}

func (e *enc) finish() []byte {
	sum := crc32.ChecksumIEEE(e.buf.Bytes())
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	e.buf.Write(tail[:])
	return e.buf.Bytes()
}

// check appends the checksum of everything written since offset start,
// so a part encoded mid-buffer carries the same trailer finish gives a
// part encoded alone.
func (e *enc) check(start int) {
	sum := crc32.ChecksumIEEE(e.buf.Bytes()[start:])
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], sum)
	e.buf.Write(tail[:])
}

type dec struct {
	data []byte
	pos  int
	err  error
}

func newDec(data []byte, magic string) (*dec, error) {
	if len(data) < len(magic)+1+4 {
		return nil, ErrTruncated
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, ErrChecksum
	}
	d := &dec{data: body}
	if string(d.take(len(magic))) != magic {
		return nil, ErrBadMagic
	}
	if v := d.byte(); v != version {
		return nil, fmt.Errorf("wire: unsupported version %d", v)
	}
	return d, nil
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: decode at %d: %s", d.pos, fmt.Sprintf(format, args...))
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.data) {
		d.fail("need %d bytes", n)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *dec) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) count() int {
	n := d.u()
	if n > uint64(len(d.data)) {
		d.fail("implausible count %d", n)
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count()
	return string(d.take(n))
}

func (d *dec) blob() []byte {
	n := d.count()
	b := d.take(n)
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *dec) f64() float64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func (d *dec) value() heap.Value {
	k := heap.Kind(d.byte())
	switch k {
	case heap.KUnit:
		return heap.UnitVal()
	case heap.KInt:
		return heap.IntVal(d.i())
	case heap.KFun:
		return heap.FunVal(d.i())
	case heap.KFloat:
		return heap.FloatVal(d.f64())
	case heap.KPtr:
		i := d.i()
		off := d.i()
		return heap.PtrVal(i, off)
	default:
		d.fail("unknown value kind %d", k)
		return heap.Value{}
	}
}

func (d *dec) values() []heap.Value {
	n := d.count()
	out := make([]heap.Value, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.value())
	}
	return out
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.data) {
		return fmt.Errorf("wire: %d trailing bytes", len(d.data)-d.pos)
	}
	return nil
}

// EncodeCode serializes the code part.
func EncodeCode(c *CodePart) []byte {
	e := &enc{}
	e.codePart(c)
	return e.buf.Bytes()
}

// codePart writes the code part (magic through checksum) to e.buf.
func (e *enc) codePart(c *CodePart) {
	start := e.buf.Len()
	e.buf.Grow(64 + len(c.Name) + len(c.Program) + 10*len(c.Args))
	e.buf.WriteString(codeMagic)
	e.buf.WriteByte(version)
	e.str(c.Name)
	e.bytes(c.Program)
	e.u(uint64(c.Label))
	e.i(c.EnvIndex)
	e.u(uint64(c.TableLen))
	e.u(uint64(c.HeapWords))
	e.u(uint64(len(c.Args)))
	for _, a := range c.Args {
		e.i(a)
	}
	e.i(c.Seed)
	e.check(start)
}

// DecodeCode parses a code part.
func DecodeCode(data []byte) (*CodePart, error) {
	d, err := newDec(data, codeMagic)
	if err != nil {
		return nil, err
	}
	c := &CodePart{}
	c.Name = d.str()
	c.Program = d.blob()
	c.Label = int(d.u())
	c.EnvIndex = d.i()
	c.TableLen = int(d.u())
	c.HeapWords = int(d.u())
	n := d.count()
	for i := 0; i < n && d.err == nil; i++ {
		c.Args = append(c.Args, d.i())
	}
	c.Seed = d.i()
	if err := d.done(); err != nil {
		return nil, err
	}
	return c, nil
}

// EncodeState serializes the state part.
func EncodeState(s *StatePart) []byte {
	e := &enc{}
	e.statePart(s)
	return e.buf.Bytes()
}

// statePart writes the state part (magic through checksum) to e.buf.
func (e *enc) statePart(s *StatePart) {
	start := e.buf.Len()
	// Pre-size to the worst-case encoding (a value is a kind byte plus at
	// most two 10-byte varints) so the buffer never regrows mid-encode.
	words := 0
	for _, en := range s.Heap.Entries {
		words += len(en.Words)
	}
	for _, lv := range s.Heap.Levels {
		for _, sh := range lv.Shadows {
			words += len(sh.Words)
		}
		words += len(lv.Allocs)
	}
	for _, c := range s.Conts {
		words += len(c.Args)
	}
	// Typical-case reservation: small varints dominate heap words, so
	// budgeting the worst case (21 bytes/word) would allocate over twice
	// the final size; one residual growth is cheaper than that.
	e.buf.Grow(64 + 24*(len(s.Heap.Entries)+len(s.Conts)+len(s.Heap.Levels)) + 8*words)
	e.buf.WriteString(statMagic)
	e.buf.WriteByte(version)
	snap := s.Heap
	e.u(uint64(snap.TableLen))
	e.u(uint64(len(snap.Entries)))
	for _, en := range snap.Entries {
		e.i(en.Idx)
		e.u(uint64(en.Level))
		e.values(en.Words)
	}
	e.u(uint64(len(snap.Levels)))
	for _, lv := range snap.Levels {
		e.u(uint64(len(lv.Shadows)))
		for _, sh := range lv.Shadows {
			e.i(sh.Idx)
			e.u(uint64(sh.OldLevel))
			e.values(sh.Words)
		}
		e.u(uint64(len(lv.Allocs)))
		for _, a := range lv.Allocs {
			e.i(a)
		}
	}
	e.u(uint64(len(s.Conts)))
	for _, c := range s.Conts {
		e.i(c.FnIndex)
		e.values(c.Args)
	}
	e.check(start)
}

// DecodeState parses a state part.
func DecodeState(data []byte) (*StatePart, error) {
	d, err := newDec(data, statMagic)
	if err != nil {
		return nil, err
	}
	snap := &heap.Snapshot{TableLen: int(d.u())}
	ne := d.count()
	for i := 0; i < ne && d.err == nil; i++ {
		en := heap.EntrySnap{Idx: d.i(), Level: int(d.u())}
		en.Words = d.values()
		snap.Entries = append(snap.Entries, en)
	}
	nl := d.count()
	for i := 0; i < nl && d.err == nil; i++ {
		lv := heap.LevelSnap{}
		ns := d.count()
		for j := 0; j < ns && d.err == nil; j++ {
			sh := heap.ShadowSnap{Idx: d.i(), OldLevel: int(d.u())}
			sh.Words = d.values()
			lv.Shadows = append(lv.Shadows, sh)
		}
		na := d.count()
		for j := 0; j < na && d.err == nil; j++ {
			lv.Allocs = append(lv.Allocs, d.i())
		}
		snap.Levels = append(snap.Levels, lv)
	}
	s := &StatePart{Heap: snap}
	nc := d.count()
	for i := 0; i < nc && d.err == nil; i++ {
		c := spec.Continuation{FnIndex: d.i()}
		c.Args = d.values()
		s.Conts = append(s.Conts, c)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeImage serializes a complete image as a checkpoint file: the
// executable header followed by length-prefixed code and state parts.
func EncodeImage(img *Image) []byte {
	return AppendImage(nil, img)
}

// imgEncPool recycles image encoders: a checkpointing process encodes
// an image every interval, and migrate.Store forbids Put from retaining
// the bytes, so the scratch buffer can be handed back immediately.
var imgEncPool = sync.Pool{New: func() any { return new(enc) }}

// AppendImage appends img's checkpoint-file encoding (EncodeImage's
// layout) to buf and returns the extended slice. The checkpoint hot
// path reuses buf across intervals; encoding scratch is pooled, so a
// steady-state checkpoint loop allocates nothing here.
func AppendImage(buf []byte, img *Image) []byte {
	e := imgEncPool.Get().(*enc)
	e.buf.Reset()
	e.buf.WriteString(ExecHeader)
	var lens [4]byte
	// Each part's 4-byte length prefix is reserved up front and
	// backfilled once the part is encoded in place.
	e.buf.Write(lens[:])
	start := e.buf.Len()
	e.codePart(&img.Code)
	binary.BigEndian.PutUint32(e.buf.Bytes()[start-4:start], uint32(e.buf.Len()-start))
	e.buf.Write(lens[:])
	start = e.buf.Len()
	e.statePart(&img.State)
	binary.BigEndian.PutUint32(e.buf.Bytes()[start-4:start], uint32(e.buf.Len()-start))
	out := append(buf, e.buf.Bytes()...)
	imgEncPool.Put(e)
	return out
}

// DecodeImage parses a checkpoint file.
func DecodeImage(data []byte) (*Image, error) {
	if len(data) < len(ExecHeader)+8 {
		return nil, ErrTruncated
	}
	if string(data[:len(ExecHeader)]) != ExecHeader {
		return nil, ErrBadMagic
	}
	rest := data[len(ExecHeader):]
	if len(rest) < 4 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) < n {
		return nil, ErrTruncated
	}
	code, err := DecodeCode(rest[:n])
	if err != nil {
		return nil, err
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, ErrTruncated
	}
	m := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint32(len(rest)) != m {
		return nil, ErrTruncated
	}
	state, err := DecodeState(rest)
	if err != nil {
		return nil, err
	}
	return &Image{Code: *code, State: *state}, nil
}
