package wire

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/heap"
	"repro/internal/spec"
)

func sampleImage() *Image {
	return &Image{
		Code: CodePart{
			Name:      "proc-7",
			Program:   []byte("not-really-fir-but-opaque-here"),
			Label:     12,
			EnvIndex:  3,
			TableLen:  16,
			HeapWords: 40,
			Args:      []int64{1, -2, 3},
			Seed:      42,
		},
		State: StatePart{
			Heap: &heap.Snapshot{
				TableLen: 16,
				Entries: []heap.EntrySnap{
					{Idx: 0, Level: 0, Words: []heap.Value{heap.IntVal(5), heap.FloatVal(2.5)}},
					{Idx: 3, Level: 1, Words: []heap.Value{heap.PtrVal(0, 1), heap.FunVal(2)}},
				},
				Levels: []heap.LevelSnap{
					{
						Shadows: []heap.ShadowSnap{{Idx: 3, OldLevel: 0, Words: []heap.Value{heap.IntVal(-1), heap.IntVal(0)}}},
						Allocs:  []int64{5},
					},
				},
			},
			Conts: []spec.Continuation{
				{FnIndex: 4, Args: []heap.Value{heap.PtrVal(3, 0), heap.IntVal(9)}},
			},
		},
	}
}

func TestCodePartRoundTrip(t *testing.T) {
	c := sampleImage().Code
	got, err := DecodeCode(EncodeCode(&c))
	if err != nil {
		t.Fatalf("DecodeCode: %v", err)
	}
	if got.Name != c.Name || string(got.Program) != string(c.Program) ||
		got.Label != c.Label || got.EnvIndex != c.EnvIndex ||
		got.TableLen != c.TableLen || got.HeapWords != c.HeapWords || got.Seed != c.Seed {
		t.Fatalf("round trip changed code part: %+v vs %+v", got, c)
	}
	if len(got.Args) != 3 || got.Args[1] != -2 {
		t.Fatalf("args = %v", got.Args)
	}
}

func TestStatePartRoundTrip(t *testing.T) {
	s := sampleImage().State
	got, err := DecodeState(EncodeState(&s))
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if !got.Heap.Equal(s.Heap) {
		t.Fatal("heap snapshot changed in round trip")
	}
	if len(got.Conts) != 1 || got.Conts[0].FnIndex != 4 || len(got.Conts[0].Args) != 2 {
		t.Fatalf("conts = %+v", got.Conts)
	}
	if !got.Conts[0].Args[0].Equal(heap.PtrVal(3, 0)) {
		t.Fatalf("cont arg = %s", got.Conts[0].Args[0])
	}
}

func TestImageRoundTripAndHeader(t *testing.T) {
	img := sampleImage()
	data := EncodeImage(img)
	if string(data[:len(ExecHeader)]) != ExecHeader {
		t.Fatalf("checkpoint file missing executable header; starts %q", data[:12])
	}
	got, err := DecodeImage(data)
	if err != nil {
		t.Fatalf("DecodeImage: %v", err)
	}
	if got.Code.Name != img.Code.Name || !got.State.Heap.Equal(img.State.Heap) {
		t.Fatal("image round trip changed contents")
	}
}

func TestCorruptionDetected(t *testing.T) {
	img := sampleImage()
	code := EncodeCode(&img.Code)
	for i := 0; i < len(code); i += 5 {
		bad := make([]byte, len(code))
		copy(bad, code)
		bad[i] ^= 0xFF
		if _, err := DecodeCode(bad); err == nil {
			t.Fatalf("code corruption at %d undetected", i)
		}
	}
	state := EncodeState(&img.State)
	for i := 0; i < len(state); i += 11 {
		bad := make([]byte, len(state))
		copy(bad, state)
		bad[i] ^= 0xFF
		if _, err := DecodeState(bad); err == nil {
			t.Fatalf("state corruption at %d undetected", i)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	img := sampleImage()
	data := EncodeImage(img)
	for _, n := range []int{0, 5, len(ExecHeader), len(ExecHeader) + 3, len(data) - 1} {
		if _, err := DecodeImage(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes undetected", n)
		}
	}
	if _, err := DecodeImage(append([]byte("#!wrong-hdr\n"), data[12:]...)); err == nil {
		t.Fatal("bad header undetected")
	}
}

func TestValueEncodingQuick(t *testing.T) {
	f := func(ints []int64, floats []float64, ptrIdx []int64) bool {
		var words []heap.Value
		for _, v := range ints {
			words = append(words, heap.IntVal(v))
		}
		for _, v := range floats {
			if math.IsNaN(v) {
				v = 0 // NaN never compares equal; equality is tested elsewhere
			}
			words = append(words, heap.FloatVal(v))
		}
		for i, v := range ptrIdx {
			if v < 0 {
				v = -v
			}
			words = append(words, heap.PtrVal(v, int64(i)))
			words = append(words, heap.FunVal(v%100))
		}
		s := &StatePart{Heap: &heap.Snapshot{
			TableLen: 1,
			Entries:  []heap.EntrySnap{{Idx: 0, Words: words}},
		}}
		got, err := DecodeState(EncodeState(s))
		if err != nil {
			return false
		}
		return got.Heap.Equal(s.Heap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
