package migrate

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/wire"
)

// chainStore builds a store holding: full image at "n@0", two deltas
// "n@1" (base n@0) and "n@2" (base n@1), head ref "n" → "n@2".
func chainStore(t *testing.T) (*memStore, *heap.Snapshot) {
	t.Helper()
	h := heap.New(heap.Config{TrackDirty: true})
	var roots []heap.Value
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range roots {
			yield(v)
		}
	})
	a, _ := h.Alloc(3)
	roots = append(roots, a)
	_ = h.Store(a, 0, heap.IntVal(10))

	s := newMemStore()
	full := &wire.Image{
		Code:  wire.CodePart{Name: "p", Program: []byte("prog"), TableLen: h.TableLen()},
		State: wire.StatePart{Heap: h.Snapshot()},
	}
	if err := s.Put("n@0", wire.EncodeImage(full)); err != nil {
		t.Fatal(err)
	}
	h.MarkSnapshotBase()

	_ = h.Store(a, 1, heap.IntVal(20))
	d1 := &wire.DeltaImage{Base: "n@0", Seq: 1, Code: wire.CodePart{Name: "p"}, Delta: *h.SnapshotDelta()}
	if err := s.Put("n@1", wire.EncodeDeltaImage(d1)); err != nil {
		t.Fatal(err)
	}

	_ = h.Store(a, 2, heap.IntVal(30))
	d2 := &wire.DeltaImage{Base: "n@1", Seq: 2, Code: wire.CodePart{Name: "p"}, Delta: *h.SnapshotDelta()}
	if err := s.Put("n@2", wire.EncodeDeltaImage(d2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("n", wire.EncodeRef("n@2")); err != nil {
		t.Fatal(err)
	}
	return s, h.Snapshot()
}

func TestFetchImageResolvesChain(t *testing.T) {
	s, want := chainStore(t)
	for _, name := range []string{"n", "n@2"} {
		img, err := FetchImage(s, name)
		if err != nil {
			t.Fatalf("FetchImage(%q): %v", name, err)
		}
		if !img.State.Heap.Equal(want) {
			t.Fatalf("FetchImage(%q): rebuilt heap diverges from the live snapshot", name)
		}
		if string(img.Code.Program) != "prog" {
			t.Fatalf("FetchImage(%q): program not inherited from the chain root", name)
		}
	}
	// A full member fetches directly (no deltas applied).
	img, err := FetchImage(s, "n@0")
	if err != nil {
		t.Fatal(err)
	}
	if len(img.State.Heap.Entries) == 0 {
		t.Fatal("full member fetch returned an empty heap")
	}
}

func TestResolveChainOrder(t *testing.T) {
	s, _ := chainStore(t)
	chain, err := ResolveChain(s, "n")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0] != "n@0" || chain[2] != "n@2" {
		t.Fatalf("chain = %v, want [n@0 n@1 n@2]", chain)
	}
}

func TestFetchImageBrokenChain(t *testing.T) {
	s, _ := chainStore(t)
	delete(s.m, "n@1")
	if _, err := FetchImage(s, "n"); err == nil || !strings.Contains(err.Error(), "n@1") {
		t.Fatalf("broken chain: %v, want an error naming the missing member", err)
	}
}

func TestFetchImageRefCycleGuard(t *testing.T) {
	s := newMemStore()
	// Two deltas referencing each other: resolution must terminate, and
	// the cycle surfaces under the typed head-ref identity.
	d1 := &wire.DeltaImage{Base: "b", Seq: 1, Code: wire.CodePart{Name: "p"}}
	d2 := &wire.DeltaImage{Base: "a", Seq: 2, Code: wire.CodePart{Name: "p"}}
	_ = s.Put("a", wire.EncodeDeltaImage(d1))
	_ = s.Put("b", wire.EncodeDeltaImage(d2))
	if _, err := FetchImage(s, "a"); !errors.Is(err, ErrBadHeadRef) {
		t.Fatalf("cyclic chain: %v, want ErrBadHeadRef", err)
	}
	if _, err := ResolveChain(s, "a"); !errors.Is(err, ErrBadHeadRef) {
		t.Fatalf("cyclic chain listed: %v, want ErrBadHeadRef", err)
	}
}

// TestResolveChainBadHeadRef: every way a published watermark can be
// damaged resolves to a typed *BadHeadRefError (errors.Is ErrBadHeadRef)
// that names the chain — never a generic decode error, and never a
// silent success.
func TestResolveChainBadHeadRef(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(s *memStore)
		member  string // expected BadHeadRefError.Member ("" = head record)
	}{
		{"truncated head ref (no target)", func(s *memStore) {
			s.m["n"] = []byte(wire.RefHeader)
		}, ""},
		{"corrupt head ref (newline in target)", func(s *memStore) {
			s.m["n"] = []byte(wire.RefHeader + "n@2\nextra")
		}, ""},
		{"missing mid-chain member", func(s *memStore) {
			delete(s.m, "n@1")
		}, "n@1"},
		{"corrupt delta member", func(s *memStore) {
			s.m["n@1"] = append([]byte(wire.DeltaHeader), "garbage"...)
		}, "n@1"},
		{"junk chain root", func(s *memStore) {
			s.m["n@0"] = []byte("not a checkpoint at all")
		}, "n@0"},
		{"head ref pointing at another head ref", func(s *memStore) {
			s.m["n@2"] = wire.EncodeRef("n@1")
		}, "n@2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := chainStore(t)
			tc.corrupt(s)
			_, err := ResolveChain(s, "n")
			if !errors.Is(err, ErrBadHeadRef) {
				t.Fatalf("ResolveChain: %v, want ErrBadHeadRef", err)
			}
			var bad *BadHeadRefError
			if !errors.As(err, &bad) {
				t.Fatalf("ResolveChain: %v, want *BadHeadRefError", err)
			}
			if bad.Chain != "n" {
				t.Fatalf("BadHeadRefError.Chain = %q, want %q", bad.Chain, "n")
			}
			if bad.Member != tc.member {
				t.Fatalf("BadHeadRefError.Member = %q, want %q", bad.Member, tc.member)
			}
			if _, err := FetchImage(s, "n"); !errors.Is(err, ErrBadHeadRef) {
				t.Fatalf("FetchImage: %v, want ErrBadHeadRef", err)
			}
		})
	}
}

// TestResolveChainMissingHeadStaysNotFound: "no checkpoint yet" on the
// entry name itself is an ordinary answer, not a damaged watermark —
// it must NOT acquire the ErrBadHeadRef identity.
func TestResolveChainMissingHeadStaysNotFound(t *testing.T) {
	s := newMemStore()
	_, err := ResolveChain(s, "ghost")
	if err == nil {
		t.Fatal("missing head resolved without error")
	}
	if errors.Is(err, ErrBadHeadRef) {
		t.Fatalf("missing head: %v must not be ErrBadHeadRef", err)
	}
}
