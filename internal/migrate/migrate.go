// Package migrate implements whole-process migration (§4.2): the pack,
// transmit and unpack operations, the three migration protocols (migrate,
// suspend, checkpoint), the migration server that receives, verifies,
// recompiles and resumes inbound processes, and checkpoint storage.
package migrate

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/vm"
	"repro/internal/wire"
)

// Proto identifies a migration protocol parsed from a target string.
type Proto int

const (
	// ProtoMigrate ships the process to a migration server for immediate
	// execution; the server verifies and recompiles the FIR (untrusted).
	ProtoMigrate Proto = iota
	// ProtoMigrateBinary ships the process without verification — the
	// paper's trusted "binary migration" (§5), which skips the type check
	// and recompilation at the destination.
	ProtoMigrateBinary
	// ProtoSuspend writes the process image to storage and terminates it.
	ProtoSuspend
	// ProtoCheckpoint writes the process image to storage and continues.
	ProtoCheckpoint
)

func (p Proto) String() string {
	switch p {
	case ProtoMigrate:
		return "migrate"
	case ProtoMigrateBinary:
		return "migrate-bin"
	case ProtoSuspend:
		return "suspend"
	case ProtoCheckpoint:
		return "checkpoint"
	default:
		return fmt.Sprintf("proto(%d)", int(p))
	}
}

// ErrBadTarget reports an unparsable migration target string.
var ErrBadTarget = errors.New("migrate: bad target string")

// ParseTarget splits a migration target string into protocol and address.
// The string format follows §4.2.1: "the string includes information on
// what protocol to use to transfer state to the target". Examples:
// "migrate://host:port", "migrate-bin://host:port", "checkpoint://name",
// "suspend://name".
func ParseTarget(s string) (Proto, string, error) {
	i := strings.Index(s, "://")
	if i < 0 {
		return 0, "", fmt.Errorf("%w: %q (no scheme)", ErrBadTarget, s)
	}
	scheme, addr := s[:i], s[i+3:]
	if addr == "" {
		return 0, "", fmt.Errorf("%w: %q (empty address)", ErrBadTarget, s)
	}
	switch scheme {
	case "migrate":
		return ProtoMigrate, addr, nil
	case "migrate-bin":
		return ProtoMigrateBinary, addr, nil
	case "suspend":
		return ProtoSuspend, addr, nil
	case "checkpoint":
		return ProtoCheckpoint, addr, nil
	default:
		return 0, "", fmt.Errorf("%w: %q (unknown scheme %q)", ErrBadTarget, s, scheme)
	}
}

// Store is the reliable persistent storage checkpoints are written to.
// The paper uses an NFS mount visible across the cluster; internal/cluster
// provides in-memory and directory-backed implementations.
//
// Put must not retain data after it returns: the checkpoint hot path
// reuses its encode buffer across intervals, so an implementation that
// needs the bytes later has to copy them (as MemStore does) or write
// them out before returning.
type Store interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List() ([]string, error)
}

// encodedProgram memoizes fir.EncodeProgram per program identity, bounded
// FIFO like the engine artifact caches. A checkpointing process re-packs
// the same (immutable) program every interval; re-encoding it dominated
// the capture pause. The cached bytes are shared by every image built
// from the program — consumers treat Code.Program as read-only.
var encodeCache struct {
	mu    sync.Mutex
	m     map[*fir.Program][]byte
	order []*fir.Program
}

const encodeCacheMax = 16

func encodedProgram(p *fir.Program) []byte {
	encodeCache.mu.Lock()
	if b, ok := encodeCache.m[p]; ok {
		encodeCache.mu.Unlock()
		return b
	}
	encodeCache.mu.Unlock()

	b := fir.EncodeProgram(p)

	encodeCache.mu.Lock()
	defer encodeCache.mu.Unlock()
	if _, ok := encodeCache.m[p]; !ok {
		if encodeCache.m == nil {
			encodeCache.m = make(map[*fir.Program][]byte)
		}
		encodeCache.m[p] = b
		encodeCache.order = append(encodeCache.order, p)
		for len(encodeCache.order) > encodeCacheMax {
			delete(encodeCache.m, encodeCache.order[0])
			encodeCache.order = encodeCache.order[1:]
		}
	}
	return encodeCache.m[p]
}

// Pack captures the complete state of a running process as a migration
// image (§4.2.2). It stores the continuation function and live variables
// into a freshly allocated migrate_env block (so that no state lives
// outside the heap), runs a full garbage collection, and snapshots the
// heap, pointer table and speculation continuations.
func Pack(r rt.Runtime, label int, fnIdx int64, args []heap.Value) (*wire.Image, error) {
	h := r.Heap()
	env, err := h.Alloc(int64(len(args)) + 1)
	if err != nil {
		return nil, fmt.Errorf("migrate: allocating migrate_env: %w", err)
	}
	r.Pin(env)
	if err := h.Store(env, 0, heap.FunVal(fnIdx)); err != nil {
		return nil, err
	}
	for i, a := range args {
		if err := h.Store(env, int64(i)+1, a); err != nil {
			return nil, err
		}
	}
	// "The pack operation first performs garbage collection on the heap."
	h.CollectMajor()
	snap := h.Snapshot()
	words := 0
	for _, e := range snap.Entries {
		words += len(e.Words)
	}
	procArgs := make([]int64, r.NArgs())
	for i := range procArgs {
		procArgs[i] = r.Arg(int64(i))
	}
	img := &wire.Image{
		Code: wire.CodePart{
			Name:      r.Name(),
			Program:   encodedProgram(r.Program()),
			Label:     label,
			EnvIndex:  env.I,
			TableLen:  snap.TableLen,
			HeapWords: words,
			Args:      procArgs,
		},
		State: wire.StatePart{
			Heap:  snap,
			Conts: r.Spec().Snapshot(),
		},
	}
	return img, nil
}

// Backend selects the runtime environment an unpacked process resumes on.
type Backend int

const (
	// BackendVM resumes on the FIR interpreter.
	BackendVM Backend = iota
	// BackendRISC recompiles to the RISC target and resumes there.
	BackendRISC
)

// Options configures Unpack.
type Options struct {
	// Engine names the execution engine (internal/engine registry) the
	// process resumes on. Empty falls back to the legacy Backend enum —
	// callers that predate the pluggable engine layer keep working
	// unchanged.
	Engine string
	// Backend selects the runtime environment (default: interpreter).
	// Superseded by Engine when that is non-empty.
	Backend Backend
	// Trusted skips type checking and label validation — the binary
	// protocol. Only enable for peers inside the trust boundary.
	Trusted bool
	// Externs are additional externals (beyond the standard set) the
	// resumed process may call; they participate in type checking.
	Externs rt.Registry
	// Config carries backend process options (stdout, fuel, name, …).
	Config vm.Config
}

// engineName resolves the selected engine name.
func (o Options) engineName() string {
	if o.Engine != "" {
		return o.Engine
	}
	if o.Backend == BackendRISC {
		return "risc"
	}
	return engine.DefaultName
}

// Timings reports where unpack time went, reproducing the paper's
// breakdown of migration cost (compilation dominates untrusted migration).
type Timings struct {
	Decode  time.Duration // FIR decode
	Check   time.Duration // type check + label validation (untrusted only)
	Compile time.Duration // backend code generation (engines with a Precompile hook)
	Restore time.Duration // heap reconstruction + resume positioning
}

// Total returns the summed unpack time.
func (t Timings) Total() time.Duration { return t.Decode + t.Check + t.Compile + t.Restore }

// Unpack reconstructs a process from an image: decode the FIR, verify it
// (unless trusted), recompile for the local engine, rebuild the heap from
// the snapshot, restore the speculation continuations, and position the
// process at the resume continuation read out of migrate_env with full
// safety checks (§4.2.2). The engine is chosen by Options.Engine (any
// name registered with internal/engine) or the legacy Backend enum.
func Unpack(img *wire.Image, opts Options) (rt.Proc, Timings, error) {
	var tm Timings

	name := opts.engineName()
	eng, err := engine.Get(name)
	if err != nil {
		return nil, tm, err
	}

	t0 := time.Now()
	prog, err := fir.DecodeProgram(img.Code.Program)
	if err != nil {
		return nil, tm, err
	}
	tm.Decode = time.Since(t0)

	cfg := opts.Config
	if cfg.Name == "" {
		cfg.Name = img.Code.Name
	}
	if cfg.Args == nil {
		cfg.Args = img.Code.Args
	}

	if !opts.Trusted {
		t0 = time.Now()
		sigs := rt.StdExterns().Sigs()
		for n, e := range opts.Externs {
			sigs[n] = e.Sig
		}
		if err := fir.Check(prog, sigs); err != nil {
			return nil, tm, fmt.Errorf("migrate: inbound program rejected: %w", err)
		}
		labels, err := fir.MigrateLabels(prog)
		if err != nil {
			return nil, tm, err
		}
		if _, ok := labels[img.Code.Label]; !ok {
			return nil, tm, fmt.Errorf("migrate: resume label %d does not correspond to a migration point", img.Code.Label)
		}
		tm.Check = time.Since(t0)
	}

	// Code generation runs up front when the engine supports it, so the
	// paper's cost breakdown (compilation dominating untrusted migration,
	// experiment E1) stays separately attributable; engines without a
	// Precompile hook compile inside Resume/StartAt and their cost lands
	// in Restore.
	var art any
	pc, canPrecompile := eng.(engine.Precompiler)
	if canPrecompile {
		t0 = time.Now()
		if art, err = pc.Precompile(prog); err != nil {
			return nil, tm, err
		}
		tm.Compile = time.Since(t0)
	}

	t0 = time.Now()
	h, err := heap.Restore(img.State.Heap, cfg.Heap)
	if err != nil {
		return nil, tm, err
	}

	// Read the resume state out of migrate_env, applying the standard
	// safety checks as the values are read.
	env := heap.PtrVal(img.Code.EnvIndex, 0)
	size, err := h.BlockSize(env)
	if err != nil {
		return nil, tm, fmt.Errorf("migrate: migrate_env: %w", err)
	}
	if size < 1 {
		return nil, tm, fmt.Errorf("migrate: migrate_env block is empty")
	}
	fnv, err := h.Load(env, 0)
	if err != nil {
		return nil, tm, err
	}
	if fnv.Kind != heap.KFun {
		return nil, tm, fmt.Errorf("migrate: migrate_env word 0 is %s, want fun", fnv)
	}
	args := make([]heap.Value, 0, size-1)
	for i := int64(1); i < size; i++ {
		v, err := h.Load(env, i)
		if err != nil {
			return nil, tm, err
		}
		args = append(args, v)
	}

	engCfg := engine.Config{
		Heap: cfg.Heap, Collector: cfg.Collector, Stdout: cfg.Stdout, Fuel: cfg.Fuel,
		TrapSpeculation: cfg.TrapSpeculation, Name: cfg.Name, Args: cfg.Args, Seed: cfg.Seed,
	}
	var proc rt.Exec
	if canPrecompile {
		// Reuse the artifact timed above instead of recompiling in StartAt.
		proc, err = pc.ResumeWith(art, prog, h, img.State.Conts, engCfg)
	} else {
		proc, err = eng.Resume(prog, h, img.State.Conts, engCfg)
	}
	if err != nil {
		return nil, tm, err
	}
	for n, e := range opts.Externs {
		proc.RegisterExtern(n, e.Sig, e.Fn)
	}
	if err := proc.StartAt(fnv.I, args); err != nil {
		return nil, tm, err
	}
	tm.Restore = time.Since(t0)
	return proc, tm, nil
}

// LoadCheckpoint reads a checkpoint from storage and resumes it — what a
// resurrection daemon does when a node fails (§2). Full checkpoint files
// carry the executable header, honouring the paper's "checkpoints are
// formatted as executable files"; head refs and delta chains written by
// the incremental pipeline are resolved transparently (FetchImage).
func LoadCheckpoint(store Store, name string, opts Options) (rt.Proc, error) {
	img, err := FetchImage(store, name)
	if err != nil {
		return nil, err
	}
	proc, _, err := Unpack(img, opts)
	return proc, err
}
