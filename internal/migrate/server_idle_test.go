package migrate

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestServerIdleDeadlineRefreshesPerFrame: a transfer that keeps making
// progress survives past the idle timeout — the deadline is per I/O
// operation, not one fixed budget pinned at accept time. A 300ms idle
// server must finish reading a frame trickled over ~900ms as long as no
// single gap exceeds the idle window (the pre-fix behaviour set one
// deadline for the whole connection and cut such transfers off
// mid-stream).
func TestServerIdleDeadlineRefreshesPerFrame(t *testing.T) {
	srv, addr := runServer(t, ServerConfig{IdleTimeout: 300 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Mode byte, then a framed payload trickled in small pieces with
	// sub-idle gaps. The payload is garbage: the server reads the whole
	// frame (the part under test), fails to decode it, and answers ERR.
	payload := make([]byte, 64)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write([]byte{modeUntrusted}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(payload); off += 16 {
		time.Sleep(220 * time.Millisecond) // < idle, but 4 gaps ≈ 3× idle total
		if _, err := conn.Write(payload[off : off+16]); err != nil {
			t.Fatalf("trickled write at offset %d: %v (server dropped a progressing transfer)", off, err)
		}
	}

	if err := readStatus(conn); err == nil {
		t.Fatal("garbage code frame was acked OK")
	} else if _, ok := err.(net.Error); ok {
		t.Fatalf("no status reply: %v (server dropped a progressing transfer)", err)
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("server never processed the trickled frame")
	}
}

// TestServerIdleDeadlineDropsStalledPeer: a peer that stops sending bytes
// entirely is cut off after the idle timeout instead of holding a server
// slot forever.
func TestServerIdleDeadlineDropsStalledPeer(t *testing.T) {
	_, addr := runServer(t, ServerConfig{IdleTimeout: 200 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{modeUntrusted}); err != nil {
		t.Fatal(err)
	}
	// Send nothing further. The server should drop us; a blocking read
	// observes the close well before the test's own safety deadline.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("read returned data from a server that should have dropped us")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept a fully stalled session open past the idle timeout")
	}
}
