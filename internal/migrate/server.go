package migrate

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/frame"
	"repro/internal/rt"
	"repro/internal/vm"
	"repro/internal/wire"
)

// The transmit protocol reproduces §4.2.2's two-phase shape: the source
// first sends the code part (FIR, sizes, migrate_env index, resume label);
// the server decodes, verifies and recompiles it, and only after a
// successful ack does the source send the heap contents. Frames are
// length-prefixed (the shared internal/frame codec, also spoken by the
// distributed cluster transport); the first byte of a session selects
// trusted ('B', binary protocol) or untrusted ('U') handling.

const (
	modeUntrusted = 'U'
	modeBinary    = 'B'
)

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	return frame.Write(w, payload)
}

// ReadFrame reads one length-prefixed frame. The payload is read through
// the shared codec's capped, chunk-growing copy: an untrusted length
// prefix can never force a large up-front allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	return frame.Read(r)
}

func sendStatus(w io.Writer, err error) error {
	if err != nil {
		msg := err.Error()
		if len(msg) > 4096 {
			msg = msg[:4096]
		}
		return WriteFrame(w, append([]byte("ERR "), msg...))
	}
	return WriteFrame(w, []byte("OK"))
}

func readStatus(r io.Reader) error {
	f, err := ReadFrame(r)
	if err != nil {
		return err
	}
	if string(f) == "OK" {
		return nil
	}
	if len(f) >= 4 && string(f[:4]) == "ERR " {
		return fmt.Errorf("migrate: remote: %s", f[4:])
	}
	return fmt.Errorf("migrate: unexpected status frame %q", f)
}

// Dialer opens a connection to a migration server. The cluster layer
// supplies dialers that model network bandwidth.
type Dialer func(addr string) (net.Conn, error)

// Migrator is the client side of process migration: an rt.MigrateHandler
// that dispatches on the target protocol. Install it on every process that
// executes migrate pseudo-instructions.
type Migrator struct {
	// Store receives checkpoint and suspend images.
	Store Store
	// Dial opens connections for the migrate protocols. Defaults to
	// net.Dial("tcp", addr).
	Dial Dialer
	// Timeout bounds each network round trip (default 30s).
	Timeout time.Duration

	mu   sync.Mutex
	last ClientTimings
}

// ClientTimings breaks down where the source-side migration time went,
// reproducing §5's transfer-fraction measurements.
type ClientTimings struct {
	Pack     time.Duration // state capture (GC + snapshot + encode)
	Transfer time.Duration // network transmission incl. server acks
	Bytes    int           // bytes shipped
}

// LastTimings returns the breakdown of the most recent migration.
func (m *Migrator) LastTimings() ClientTimings {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Handle implements rt.MigrateHandler.
func (m *Migrator) Handle(req *rt.MigrationRequest) (rt.MigrateOutcome, error) {
	proto, addr, err := ParseTarget(req.Target)
	if err != nil {
		return rt.OutcomeContinueLocal, err
	}

	t0 := time.Now()
	img, err := Pack(req.Rt, req.Label, req.FnIndex, req.Args)
	if err != nil {
		return rt.OutcomeContinueLocal, err
	}
	pack := time.Since(t0)

	switch proto {
	case ProtoCheckpoint, ProtoSuspend:
		if m.Store == nil {
			return rt.OutcomeContinueLocal, errors.New("migrate: no checkpoint store configured")
		}
		data := wire.EncodeImage(img)
		if err := m.Store.Put(addr, data); err != nil {
			return rt.OutcomeContinueLocal, err
		}
		m.record(ClientTimings{Pack: pack, Bytes: len(data)})
		if proto == ProtoSuspend {
			return rt.OutcomeSuspended, nil
		}
		return rt.OutcomeContinueLocal, nil

	case ProtoMigrate, ProtoMigrateBinary:
		t1 := time.Now()
		if err := m.ship(proto, addr, img); err != nil {
			return rt.OutcomeContinueLocal, err
		}
		code := wire.EncodeCode(&img.Code)
		state := wire.EncodeState(&img.State)
		m.record(ClientTimings{Pack: pack, Transfer: time.Since(t1), Bytes: len(code) + len(state) + 1})
		return rt.OutcomeMigrated, nil

	default:
		return rt.OutcomeContinueLocal, fmt.Errorf("migrate: unhandled protocol %s", proto)
	}
}

func (m *Migrator) record(t ClientTimings) {
	m.mu.Lock()
	m.last = t
	m.mu.Unlock()
}

func (m *Migrator) ship(proto Proto, addr string, img *wire.Image) error {
	dial := m.Dial
	if dial == nil {
		dial = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	timeout := m.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))

	mode := byte(modeUntrusted)
	if proto == ProtoMigrateBinary {
		mode = modeBinary
	}
	if _, err := conn.Write([]byte{mode}); err != nil {
		return err
	}
	// Phase 1: code. The server verifies and recompiles before acking.
	if err := WriteFrame(conn, wire.EncodeCode(&img.Code)); err != nil {
		return err
	}
	if err := readStatus(conn); err != nil {
		return err
	}
	// Phase 2: state (pointer table + heap contents).
	if err := WriteFrame(conn, wire.EncodeState(&img.State)); err != nil {
		return err
	}
	return readStatus(conn)
}

// ServerConfig configures a migration server ("a version of the compiler
// that will listen for incoming migration requests, recompile any inbound
// processes on the new machine, and reconstruct their state before
// executing them", §4.2.1).
type ServerConfig struct {
	// Backend selects the runtime environment for resumed processes.
	Backend Backend
	// Externs are additional externals available to resumed processes.
	Externs rt.Registry
	// Config carries backend process options applied to resumed processes.
	Config ProcessConfig
	// OnResume, when set, takes ownership of the resumed process instead
	// of the default run-to-completion goroutine. The cluster layer uses
	// it to place processes on node schedulers.
	OnResume func(p rt.Proc)
	// AllowBinary permits the trusted binary protocol. A server exposed to
	// untrusted peers must leave it off, forcing verification.
	AllowBinary bool
	// Migrator, when set, is installed as the migrate handler on resumed
	// processes so they can migrate onward, checkpoint, or suspend from
	// this node.
	Migrator *Migrator
	// IdleTimeout bounds how long a session may go without transferring a
	// single byte (default 60s). It is refreshed on every read and write,
	// so a large chunked transfer that keeps making progress never trips
	// it — only a genuinely stalled peer does. (The old behaviour pinned
	// one 60s deadline on the whole connection, which cut off big, slow
	// but healthy transfers mid-stream.)
	IdleTimeout time.Duration
}

// ProcessConfig is the subset of backend configuration a server applies to
// inbound processes.
type ProcessConfig struct {
	Stdout          io.Writer
	Fuel            uint64
	TrapSpeculation bool
}

// ServerStats counts server activity.
type ServerStats struct {
	Accepted   int
	Rejected   int
	LastUnpack Timings
}

// Server is a migration daemon listening for inbound processes.
type Server struct {
	cfg ServerConfig
	l   net.Listener

	mu      sync.Mutex
	stats   ServerStats
	procs   []rt.Proc
	wg      sync.WaitGroup
	closing bool
}

// NewServer wraps a listener; call Serve to accept.
func NewServer(l net.Listener, cfg ServerConfig) *Server {
	return &Server{cfg: cfg, l: l}
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.l.Addr().String() }

// Stats returns a copy of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Processes returns the processes resumed so far.
func (s *Server) Processes() []rt.Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]rt.Proc, len(s.procs))
	copy(out, s.procs)
	return out
}

// Serve accepts migration sessions until the listener closes.
func (s *Server) Serve() error {
	for {
		conn, err := s.l.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	err := s.l.Close()
	s.wg.Wait()
	return err
}

// idleConn refreshes a rolling deadline before every I/O operation: the
// connection dies after IdleTimeout without progress, not after a fixed
// wall-clock budget regardless of progress.
type idleConn struct {
	net.Conn
	idle time.Duration
}

func (c idleConn) Read(p []byte) (int, error) {
	_ = c.Conn.SetDeadline(time.Now().Add(c.idle))
	return c.Conn.Read(p)
}

func (c idleConn) Write(p []byte) (int, error) {
	_ = c.Conn.SetDeadline(time.Now().Add(c.idle))
	return c.Conn.Write(p)
}

func (s *Server) handle(raw net.Conn) {
	defer raw.Close()
	idle := s.cfg.IdleTimeout
	if idle <= 0 {
		idle = 60 * time.Second
	}
	conn := idleConn{Conn: raw, idle: idle}

	var mode [1]byte
	if _, err := io.ReadFull(conn, mode[:]); err != nil {
		return
	}
	trusted := mode[0] == modeBinary
	if trusted && !s.cfg.AllowBinary {
		_ = sendStatus(conn, errors.New("binary protocol not allowed"))
		s.reject()
		return
	}

	codeBytes, err := ReadFrame(conn)
	if err != nil {
		return
	}
	code, err := wire.DecodeCode(codeBytes)
	if err != nil {
		_ = sendStatus(conn, err)
		s.reject()
		return
	}
	// The unpack (verify + recompile) work happens once the state arrives;
	// phase 1 acks after a decode so a hopeless transfer stops early. The
	// full verification still occurs before anything executes.
	if err := sendStatus(conn, nil); err != nil {
		return
	}

	stateBytes, err := ReadFrame(conn)
	if err != nil {
		return
	}
	state, err := wire.DecodeState(stateBytes)
	if err != nil {
		_ = sendStatus(conn, err)
		s.reject()
		return
	}

	img := &wire.Image{Code: *code, State: *state}
	proc, tm, err := Unpack(img, Options{
		Backend: s.cfg.Backend,
		Trusted: trusted,
		Externs: s.cfg.Externs,
		Config:  procConfig(s.cfg.Config, code.Name, code.Args),
	})
	if err != nil {
		_ = sendStatus(conn, err)
		s.reject()
		return
	}

	if s.cfg.Migrator != nil {
		proc.SetMigrateHandler(s.cfg.Migrator.Handle)
	}

	s.mu.Lock()
	s.stats.Accepted++
	s.stats.LastUnpack = tm
	s.procs = append(s.procs, proc)
	s.mu.Unlock()

	if s.cfg.OnResume != nil {
		s.cfg.OnResume(proc)
	} else {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_, _ = proc.Run()
		}()
	}
	_ = sendStatus(conn, nil)
}

func (s *Server) reject() {
	s.mu.Lock()
	s.stats.Rejected++
	s.mu.Unlock()
}

func procConfig(pc ProcessConfig, name string, args []int64) vm.Config {
	return vm.Config{
		Stdout:          pc.Stdout,
		Fuel:            pc.Fuel,
		TrapSpeculation: pc.TrapSpeculation,
		Name:            name,
		Args:            args,
	}
}
