// Incremental checkpoints: capture (PackDelta), the delta-aware store
// contract (DeltaStore / AsDeltaStore), and chain resolution (FetchImage,
// ResolveChain). A checkpoint chain is a full Image followed by delta
// images, each naming its predecessor; the head name holds a tiny ref
// record pointing at the last durable member, published only after that
// member's payload — the durability watermark resurrect reads.
package migrate

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/wire"
)

// maxChain bounds chain resolution, guarding against reference cycles in
// a corrupted store. The committer forces a full image every K deltas
// with K far below this.
const maxChain = 4096

// PackDelta captures the process's change set since the heap's snapshot
// baseline as a delta image based on the chain member `base`. Like Pack
// it stores the continuation into a fresh migrate_env block and runs a
// major collection first (so the delta also carries the frees). It
// returns nil (no error) when the heap has no baseline — the caller must
// capture a full image with Pack and MarkSnapshotBase instead.
func PackDelta(r rt.Runtime, label int, fnIdx int64, args []heap.Value, base string, seq int) (*wire.DeltaImage, error) {
	h := r.Heap()
	if !h.DeltaReady() {
		return nil, nil
	}
	env, err := h.Alloc(int64(len(args)) + 1)
	if err != nil {
		return nil, fmt.Errorf("migrate: allocating migrate_env: %w", err)
	}
	r.Pin(env)
	if err := h.Store(env, 0, heap.FunVal(fnIdx)); err != nil {
		return nil, err
	}
	for i, a := range args {
		if err := h.Store(env, int64(i)+1, a); err != nil {
			return nil, err
		}
	}
	h.CollectMajor()
	delta := h.SnapshotDelta()
	if delta == nil {
		return nil, nil
	}
	words := 0
	for _, e := range delta.Changed {
		words += len(e.Words)
	}
	procArgs := make([]int64, r.NArgs())
	for i := range procArgs {
		procArgs[i] = r.Arg(int64(i))
	}
	return &wire.DeltaImage{
		Base: base,
		Seq:  seq,
		Code: wire.CodePart{
			Name:     r.Name(),
			Program:  nil, // byte-identical to the chain base's program
			Label:    label,
			EnvIndex: env.I,
			TableLen: delta.TableLen,
			// HeapWords here is the delta's own payload, not the full heap:
			// the rebuilt image's heap size comes from the snapshot itself.
			HeapWords: words,
			Args:      procArgs,
		},
		Delta: *delta,
		// The continuation stack is small and not diffed; like the level
		// structure it travels whole so a checkpoint taken with open
		// speculation levels restores (spec.RestoreStack requires one
		// continuation per open level).
		Conts: r.Spec().Snapshot(),
	}, nil
}

// DeltaStore is the chunk/delta-aware extension of Store. Native
// implementations may index chain linkage or deduplicate content;
// AsDeltaStore upgrades any plain 3-method Store with a generic adapter
// (the linkage travels inside the delta images themselves, so no extra
// store state is required).
type DeltaStore interface {
	Store
	// PutDelta stores a delta checkpoint whose chain predecessor is base.
	PutDelta(name, base string, data []byte) error
	// ResolveChain returns the chain ending at name (following one head
	// ref if name holds one), full-image root first.
	ResolveChain(name string) ([]string, error)
}

// deltaAdapter upgrades a plain Store.
type deltaAdapter struct{ Store }

// AsDeltaStore returns s itself when it already implements DeltaStore,
// otherwise a generic adapter over its 3-method surface.
func AsDeltaStore(s Store) DeltaStore {
	if ds, ok := s.(DeltaStore); ok {
		return ds
	}
	return deltaAdapter{s}
}

// PutDelta stores the delta like any other checkpoint; the base name is
// already recorded inside the image.
func (a deltaAdapter) PutDelta(name, base string, data []byte) error {
	return a.Put(name, data)
}

// ResolveChain walks the chain by reading and sniffing each member.
func (a deltaAdapter) ResolveChain(name string) ([]string, error) {
	return ResolveChain(a.Store, name)
}

// ErrBadHeadRef is the errors.Is identity of every BadHeadRefError:
// the durable watermark under a head name does not resolve to a chain.
var ErrBadHeadRef = errors.New("migrate: bad head ref")

// BadHeadRefError reports a chain that cannot be resolved from its head:
// the head record itself is corrupt or truncated, or the chain it names
// is broken (a member missing or unreadable mid-walk). It names the
// chain so an operator sweeping a shared store knows which process's
// watermark is damaged. errors.Is(err, ErrBadHeadRef) matches.
type BadHeadRefError struct {
	Chain  string // head name the resolution started from
	Member string // offending chain member ("" when the head record itself is bad)
	Detail string
	Err    error // underlying cause, when one exists
}

func (e *BadHeadRefError) Error() string {
	at := e.Chain
	if e.Member != "" {
		at = fmt.Sprintf("%s (member %q)", e.Chain, e.Member)
	}
	if e.Err != nil {
		return fmt.Sprintf("migrate: bad head ref at %q: %s: %v", at, e.Detail, e.Err)
	}
	return fmt.Sprintf("migrate: bad head ref at %q: %s", at, e.Detail)
}

func (e *BadHeadRefError) Unwrap() error { return e.Err }

// Is matches ErrBadHeadRef, so callers need no type assertion.
func (e *BadHeadRefError) Is(target error) bool { return target == ErrBadHeadRef }

// walkChain is the one chain walk both ResolveChain and FetchImage sit
// on: it resolves name (following a head ref once) back to the full
// root, returning member names newest-first, the decoded deltas
// (newest-first, one per member except the root) and the root's raw
// bytes. Each member is read and decoded exactly once — recovery
// latency is what the delta pipeline exists to shrink.
//
// A Get failure on the entry name itself passes through untouched (a
// missing checkpoint keeps its os.ErrNotExist identity — "no checkpoint
// yet" is an ordinary answer); every failure past that first read means
// a published watermark is damaged and surfaces as *BadHeadRefError.
func walkChain(store Store, name string) (names []string, deltas []*wire.DeltaImage, root []byte, err error) {
	cur := name
	for hops := 0; ; hops++ {
		if hops > maxChain {
			return nil, nil, nil, &BadHeadRefError{Chain: name, Member: cur,
				Detail: fmt.Sprintf("chain exceeds %d members (cycle?)", maxChain)}
		}
		data, err := store.Get(cur)
		if err != nil {
			if hops > 0 {
				return nil, nil, nil, &BadHeadRefError{Chain: name, Member: cur,
					Detail: "chain member unreadable", Err: err}
			}
			return nil, nil, nil, err
		}
		if wire.IsRefHeader(data) {
			target, ok := wire.DecodeRef(data)
			if !ok {
				// Member stays empty at hop 0: the damaged record IS the
				// head, not something it points at.
				e := &BadHeadRefError{Chain: name, Detail: "corrupt or truncated head ref record"}
				if hops > 0 {
					e.Member = cur
				}
				return nil, nil, nil, e
			}
			if hops > 0 {
				return nil, nil, nil, &BadHeadRefError{Chain: name, Member: cur,
					Detail: "head ref inside a chain"}
			}
			cur = target
			continue
		}
		names = append(names, cur)
		if !wire.IsDeltaImage(data) {
			if !wire.IsImage(data) {
				return nil, nil, nil, &BadHeadRefError{Chain: name, Member: cur,
					Detail: "chain root is neither a full nor a delta checkpoint"}
			}
			return names, deltas, data, nil // the full root
		}
		d, err := wire.DecodeDeltaImage(data)
		if err != nil {
			return nil, nil, nil, &BadHeadRefError{Chain: name, Member: cur,
				Detail: "corrupt delta member", Err: err}
		}
		deltas = append(deltas, d)
		cur = d.Base
	}
}

// ResolveChain returns the checkpoint chain ending at name, root first.
// name may hold a head ref, a delta image, or a full image (a chain of
// one).
func ResolveChain(store Store, name string) ([]string, error) {
	rev, _, _, err := walkChain(store, name)
	if err != nil {
		return nil, err
	}
	// Reverse to root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// FetchImage reads checkpoint `name` and resolves it to a full process
// image: a head ref is followed, a delta chain is walked back to its full
// root and rebuilt, and a plain full image is returned as-is. This is how
// every checkpoint consumer (resurrection, -resume, LoadCheckpoint) reads
// the store, so delta chains are transparent to callers.
func FetchImage(store Store, name string) (*wire.Image, error) {
	_, deltas, root, err := walkChain(store, name)
	if err != nil {
		return nil, err
	}
	img, err := wire.DecodeImage(root)
	if err != nil {
		return nil, fmt.Errorf("migrate: checkpoint %q: chain root: %w", name, err)
	}
	// walkChain collected deltas newest-first; rebuild applies oldest-first.
	for i, j := 0, len(deltas)-1; i < j; i, j = i+1, j-1 {
		deltas[i], deltas[j] = deltas[j], deltas[i]
	}
	return wire.RebuildImage(img, deltas...)
}
