package migrate

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fir"
	"repro/internal/heap"
	"repro/internal/rt"
	"repro/internal/vm"
	"repro/internal/wire"
)

// memStore is an in-memory checkpoint store for tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(data))
	copy(cp, data)
	s.m[name] = cp
	return nil
}

func (s *memStore) Get(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[name]
	if !ok {
		return nil, fmt.Errorf("memStore: %q not found", name)
	}
	return d, nil
}

func (s *memStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		out = append(out, k)
	}
	return out, nil
}

// countdownProgram builds a program that counts down from `start` in a heap
// cell, checkpointing (or migrating) every `every` iterations to `target`,
// and halts with the final accumulated sum. Resuming from any checkpoint
// must produce the same final answer.
func countdownProgram(target string) *fir.Program {
	// main: p = alloc 2; p[0]=start from getarg(0); p[1]=0 (sum); loop(p)
	mb := fir.NewBuilder()
	mb.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(2))
	mb.Extern("start", fir.TyInt, "getarg", fir.I(0))
	mb.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.V("start"))
	main := fir.Fn("main", nil, mb.CallNamed("loop", fir.V("p")))

	// loop(p): n = p[0]; if n == 0 halt p[1];
	//   sum += n; n--; store; if n % 3 == 0 -> migrate [1, tgt] loop(p) else loop(p)
	lb := fir.NewBuilder()
	lb.Let("n", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
	lb.Let("done", fir.TyInt, fir.OpEq, fir.V("n"), fir.I(0))
	haltB := fir.NewBuilder()
	haltB.Let("sum", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(1))
	cont := fir.NewBuilder()
	cont.Let("sum0", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(1))
	cont.Let("sum1", fir.TyInt, fir.OpAdd, fir.V("sum0"), fir.V("n"))
	cont.Let("u1", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(1), fir.V("sum1"))
	cont.Let("n1", fir.TyInt, fir.OpSub, fir.V("n"), fir.I(1))
	cont.Let("u2", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.V("n1"))
	cont.Let("m", fir.TyInt, fir.OpMod, fir.V("n1"), fir.I(3))
	cont.Let("ck", fir.TyInt, fir.OpEq, fir.V("m"), fir.I(0))
	migB := fir.NewBuilder()
	migB.Extern("tgt", fir.TyPtr, "mig_target")
	loop := fir.Fn("loop", fir.Ps("p", fir.TyPtr),
		lb.If(fir.V("done"),
			haltB.Halt(fir.V("sum")),
			cont.If(fir.V("ck"),
				migB.Migrate(1, fir.V("tgt"), fir.I(0), "loop", fir.V("p")),
				fir.NewBuilder().CallNamed("loop", fir.V("p")))))

	p := fir.NewProgram("main", main, loop)
	_ = target
	return p
}

// targetExtern registers mig_target returning the given string.
func targetExtern(p rt.Proc, target string) {
	p.RegisterExtern("mig_target", fir.ExternSig{Result: fir.TyPtr},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			return r.Heap().AllocString(target)
		})
}

func migExterns(target string) rt.Registry {
	return rt.Registry{
		"mig_target": {
			Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return r.Heap().AllocString(target)
			},
		},
	}
}

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in    string
		proto Proto
		addr  string
		ok    bool
	}{
		{"migrate://host:9", ProtoMigrate, "host:9", true},
		{"migrate-bin://h:1", ProtoMigrateBinary, "h:1", true},
		{"checkpoint://ck-1", ProtoCheckpoint, "ck-1", true},
		{"suspend://name", ProtoSuspend, "name", true},
		{"bogus://x", 0, "", false},
		{"noscheme", 0, "", false},
		{"checkpoint://", 0, "", false},
	}
	for _, tc := range cases {
		proto, addr, err := ParseTarget(tc.in)
		if tc.ok && (err != nil || proto != tc.proto || addr != tc.addr) {
			t.Errorf("ParseTarget(%q) = %v,%q,%v", tc.in, proto, addr, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseTarget(%q) accepted", tc.in)
		}
	}
}

func TestCheckpointAndResume(t *testing.T) {
	const start = 10
	store := newMemStore()
	prog := countdownProgram("checkpoint://ck")

	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{start}})
	targetExtern(proc, "checkpoint://ck")
	m := &Migrator{Store: store}
	proc.SetMigrateHandler(m.Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(start * (start + 1) / 2)
	if st != rt.StatusHalted || proc.HaltCode() != want {
		t.Fatalf("original run: status=%s code=%d, want halted %d", st, proc.HaltCode(), want)
	}

	// The stored checkpoint must resume and reach the same final answer.
	resumed, err := LoadCheckpoint(store, "ck", Options{
		Externs: migExterns("checkpoint://ck"),
		Config:  vm.Config{Fuel: 100000},
	})
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	// The resumed process itself checkpoints again; same store handles it.
	resumed.SetMigrateHandler((&Migrator{Store: store}).Handle)
	st, err = resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || resumed.HaltCode() != want {
		t.Fatalf("resumed run: status=%s code=%d, want halted %d", st, resumed.HaltCode(), want)
	}
}

func TestSuspendTerminatesAndResumes(t *testing.T) {
	store := newMemStore()
	prog := countdownProgram("suspend://s1")
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{5}})
	targetExtern(proc, "suspend://s1")
	proc.SetMigrateHandler((&Migrator{Store: store}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusSuspended {
		t.Fatalf("status = %s, want suspended", st)
	}
	resumed, err := LoadCheckpoint(store, "s1", Options{
		Externs: migExterns("checkpoint://ignored"),
		Config:  vm.Config{Fuel: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	resumed.SetMigrateHandler((&Migrator{Store: newMemStore()}).Handle)
	st, err = resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || resumed.HaltCode() != 15 {
		t.Fatalf("resumed: status=%s code=%d, want halted 15", st, resumed.HaltCode())
	}
}

// runServer starts a migration server on a fresh TCP port.
func runServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l, cfg)
	go func() { _ = s.Serve() }()
	t.Cleanup(func() { _ = s.Close() })
	return s, l.Addr().String()
}

func testServerMigration(t *testing.T, backend Backend, binary bool) {
	scheme := "migrate"
	if binary {
		scheme = "migrate-bin"
	}

	var out bytes.Buffer
	done := make(chan rt.Proc, 8)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	target := scheme + "://" + l.Addr().String()
	srv := NewServer(l, ServerConfig{
		Backend:     backend,
		Externs:     migExterns(target),
		AllowBinary: true,
		Migrator:    &Migrator{},
		Config:      ProcessConfig{Stdout: &out, Fuel: 100000},
		OnResume: func(p rt.Proc) {
			go func() {
				_, _ = p.Run()
				done <- p
			}()
		},
	})
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() { _ = srv.Close() })

	prog := countdownProgram(target)
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{7}})
	targetExtern(proc, target)
	proc.SetMigrateHandler((&Migrator{}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, runErr := proc.Run()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if st != rt.StatusMigrated {
		t.Fatalf("source status = %s, want migrated", st)
	}

	// The process hops between source and server; each subsequent migrate
	// from the server targets the same server, so it lands back there.
	var final rt.Proc
	deadline := time.After(10 * time.Second)
	for final == nil {
		select {
		case p := <-done:
			if p.Status() == rt.StatusHalted {
				final = p
			}
		case <-deadline:
			t.Fatal("no process halted on the server within 10s")
		}
	}
	if final.HaltCode() != 28 { // 7*8/2
		t.Fatalf("final halt code = %d, want 28", final.HaltCode())
	}
	if srv.Stats().Accepted == 0 {
		t.Fatal("server accepted no migrations")
	}
}

func TestServerMigrationUntrustedVM(t *testing.T)   { testServerMigration(t, BackendVM, false) }
func TestServerMigrationUntrustedRISC(t *testing.T) { testServerMigration(t, BackendRISC, false) }
func TestServerMigrationBinaryVM(t *testing.T)      { testServerMigration(t, BackendVM, true) }
func TestServerMigrationBinaryRISC(t *testing.T)    { testServerMigration(t, BackendRISC, true) }

func TestServerRejectsBinaryWhenNotAllowed(t *testing.T) {
	_, addr := runServer(t, ServerConfig{AllowBinary: false})
	prog := countdownProgram("x")
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{3}})
	target := "migrate-bin://" + addr
	targetExtern(proc, target)
	proc.SetMigrateHandler((&Migrator{}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	// Migration fails -> process continues locally and halts normally.
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || proc.HaltCode() != 6 {
		t.Fatalf("status=%s code=%d, want halted 6 (local continuation)", st, proc.HaltCode())
	}
}

func TestUnpackRejectsUnknownExtern(t *testing.T) {
	// Pack a process whose program uses an extern the receiving side does
	// not provide: the untrusted unpack must reject it.
	prog := countdownProgram("checkpoint://x")
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{4}})
	targetExtern(proc, "checkpoint://x")
	store := newMemStore()
	proc.SetMigrateHandler((&Migrator{Store: store}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(store, "x", Options{Config: vm.Config{Fuel: 1000}})
	if err == nil || !strings.Contains(err.Error(), "mig_target") {
		t.Fatalf("unpack accepted program with unknown extern: %v", err)
	}
	// Trusted unpack skips the check and would resume (until the extern is
	// actually called).
	if _, err := LoadCheckpoint(store, "x", Options{Trusted: true, Config: vm.Config{Fuel: 1000}}); err != nil {
		t.Fatalf("trusted unpack failed: %v", err)
	}
}

func TestUnpackValidatesLabel(t *testing.T) {
	prog := countdownProgram("checkpoint://x")
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{4}})
	targetExtern(proc, "checkpoint://x")
	store := newMemStore()
	proc.SetMigrateHandler((&Migrator{Store: store}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	data, err := store.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	img, err := wire.DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	img.Code.Label = 999
	_, _, err = Unpack(img, Options{Externs: migExterns("checkpoint://x"), Config: vm.Config{Fuel: 1000}})
	if err == nil || !strings.Contains(err.Error(), "label") {
		t.Fatalf("unpack accepted bogus resume label: %v", err)
	}
}

func TestPackResumesWithOpenSpeculation(t *testing.T) {
	// A process checkpoints while a speculation is open; the resumed
	// process must still be able to roll that speculation back.
	mb := fir.NewBuilder()
	mb.Let("p", fir.TyPtr, fir.OpAlloc, fir.I(1))
	mb.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.I(100))
	main := fir.Fn("main", nil, mb.Speculate("body", fir.V("p")))

	bb := fir.NewBuilder()
	bb.Let("first", fir.TyInt, fir.OpEq, fir.V("c"), fir.I(0))
	body := fir.Fn("body", fir.Ps("c", fir.TyInt, "p", fir.TyPtr),
		bb.If(fir.V("first"),
			func() fir.Expr {
				b := fir.NewBuilder()
				b.Let("u", fir.TyUnit, fir.OpStore, fir.V("p"), fir.I(0), fir.I(999))
				b.Extern("tgt", fir.TyPtr, "mig_target")
				return b.Migrate(1, fir.V("tgt"), fir.I(0), "afterCk", fir.V("p"))
			}(),
			func() fir.Expr {
				// Re-entered after the post-resume rollback: p[0] must be
				// restored to 100.
				b := fir.NewBuilder()
				b.Let("v", fir.TyInt, fir.OpLoad, fir.V("p"), fir.I(0))
				return b.Commit(fir.I(1), "final", fir.V("v"))
			}()))

	afterCk := fir.Fn("afterCk", fir.Ps("p", fir.TyPtr),
		fir.NewBuilder().Rollback(fir.I(1), fir.I(1)))
	final := fir.Fn("final", fir.Ps("v", fir.TyInt), fir.NewBuilder().Halt(fir.V("v")))
	prog := fir.NewProgram("main", main, body, afterCk, final)

	store := newMemStore()
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000})
	targetExtern(proc, "suspend://spec-open")
	proc.SetMigrateHandler((&Migrator{Store: store}).Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	st, err := proc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusSuspended {
		t.Fatalf("status = %s, want suspended", st)
	}

	resumed, err := LoadCheckpoint(store, "spec-open", Options{
		Externs: migExterns("suspend://unused"),
		Config:  vm.Config{Fuel: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Spec().Depth() != 1 {
		t.Fatalf("resumed speculation depth = %d, want 1", resumed.Spec().Depth())
	}
	st, err = resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st != rt.StatusHalted || resumed.HaltCode() != 100 {
		t.Fatalf("resumed: status=%s code=%d, want halted 100 (rolled-back value)", st, resumed.HaltCode())
	}
}

func TestMigratorTimingsRecorded(t *testing.T) {
	store := newMemStore()
	prog := countdownProgram("checkpoint://tm")
	proc := vm.NewProcess(prog, vm.Config{Fuel: 100000, Args: []int64{4}})
	targetExtern(proc, "checkpoint://tm")
	m := &Migrator{Store: store}
	proc.SetMigrateHandler(m.Handle)
	if err := proc.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := proc.Run(); err != nil {
		t.Fatal(err)
	}
	tm := m.LastTimings()
	if tm.Bytes == 0 {
		t.Fatal("no bytes recorded for checkpoint")
	}
	if tm.Pack <= 0 {
		t.Fatal("no pack time recorded")
	}
}

func TestLoadCheckpointMissing(t *testing.T) {
	if _, err := LoadCheckpoint(newMemStore(), "ghost", Options{}); err == nil {
		t.Fatal("missing checkpoint loaded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame = %q", got)
	}
	// Oversized frame header must be rejected without allocation.
	var hdr bytes.Buffer
	_ = WriteFrame(&hdr, nil)
	big := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(big)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	var empty bytes.Buffer
	if _, err := ReadFrame(&empty); err == nil {
		t.Fatal("empty read succeeded")
	}
}
