package ops

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fir"
	"repro/internal/heap"
)

func ev(t *testing.T, h *heap.Heap, op fir.Op, args ...heap.Value) heap.Value {
	t.Helper()
	v, err := Eval(h, op, args, fir.TyInt)
	if err != nil {
		t.Fatalf("Eval(%s): %v", op, err)
	}
	return v
}

func TestIntArithmetic(t *testing.T) {
	h := heap.New(heap.Config{})
	cases := []struct {
		op   fir.Op
		a, b int64
		want int64
	}{
		{fir.OpAdd, 3, 4, 7},
		{fir.OpSub, 3, 4, -1},
		{fir.OpMul, 3, 4, 12},
		{fir.OpDiv, 9, 4, 2},
		{fir.OpMod, 9, 4, 1},
		{fir.OpAnd, 0b1100, 0b1010, 0b1000},
		{fir.OpOr, 0b1100, 0b1010, 0b1110},
		{fir.OpXor, 0b1100, 0b1010, 0b0110},
		{fir.OpShl, 3, 2, 12},
		{fir.OpShr, 12, 2, 3},
		{fir.OpEq, 3, 3, 1},
		{fir.OpNe, 3, 3, 0},
		{fir.OpLt, 2, 3, 1},
		{fir.OpLe, 3, 3, 1},
		{fir.OpGt, 2, 3, 0},
		{fir.OpGe, 3, 3, 1},
	}
	for _, tc := range cases {
		got := ev(t, h, tc.op, heap.IntVal(tc.a), heap.IntVal(tc.b))
		if got.Kind != heap.KInt || got.I != tc.want {
			t.Errorf("%s(%d, %d) = %s, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestTraps(t *testing.T) {
	h := heap.New(heap.Config{})
	bad := []struct {
		name string
		op   fir.Op
		args []heap.Value
	}{
		{"div by zero", fir.OpDiv, []heap.Value{heap.IntVal(1), heap.IntVal(0)}},
		{"mod by zero", fir.OpMod, []heap.Value{heap.IntVal(1), heap.IntVal(0)}},
		{"shift range", fir.OpShl, []heap.Value{heap.IntVal(1), heap.IntVal(64)}},
		{"neg shift", fir.OpShr, []heap.Value{heap.IntVal(1), heap.IntVal(-1)}},
		{"float into int op", fir.OpAdd, []heap.Value{heap.FloatVal(1), heap.IntVal(1)}},
		{"int into float op", fir.OpFAdd, []heap.Value{heap.IntVal(1), heap.FloatVal(1)}},
		{"ptradd non-ptr", fir.OpPtrAdd, []heap.Value{heap.IntVal(1), heap.IntVal(1)}},
	}
	for _, tc := range bad {
		if _, err := Eval(h, tc.op, tc.args, fir.TyInt); err == nil {
			t.Errorf("%s: no trap", tc.name)
		}
	}
}

func TestFloatOps(t *testing.T) {
	h := heap.New(heap.Config{})
	v, err := Eval(h, fir.OpFMul, []heap.Value{heap.FloatVal(1.5), heap.FloatVal(4)}, fir.TyFloat)
	if err != nil || v.F != 6 {
		t.Fatalf("fmul = %v, %v", v, err)
	}
	v, err = Eval(h, fir.OpFLt, []heap.Value{heap.FloatVal(1), heap.FloatVal(2)}, fir.TyInt)
	if err != nil || v.I != 1 {
		t.Fatalf("flt = %v, %v", v, err)
	}
	v, err = Eval(h, fir.OpFloatToInt, []heap.Value{heap.FloatVal(-2.9)}, fir.TyInt)
	if err != nil || v.I != -2 {
		t.Fatalf("ftoi = %v, %v (truncation)", v, err)
	}
	v, err = Eval(h, fir.OpIntToFloat, []heap.Value{heap.IntVal(3)}, fir.TyFloat)
	if err != nil || v.F != 3 {
		t.Fatalf("itof = %v, %v", v, err)
	}
}

func TestHeapOps(t *testing.T) {
	h := heap.New(heap.Config{})
	p, err := Eval(h, fir.OpAlloc, []heap.Value{heap.IntVal(4)}, fir.TyPtr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval(h, fir.OpStore, []heap.Value{p, heap.IntVal(1), heap.FloatVal(2.5)}, fir.TyUnit); err != nil {
		t.Fatal(err)
	}
	v, err := Eval(h, fir.OpLoad, []heap.Value{p, heap.IntVal(1)}, fir.TyFloat)
	if err != nil || v.F != 2.5 {
		t.Fatalf("load = %v, %v", v, err)
	}
	// Tag check: loading the float as int must fail.
	if _, err := Eval(h, fir.OpLoad, []heap.Value{p, heap.IntVal(1)}, fir.TyInt); err == nil ||
		!strings.Contains(err.Error(), "does not have type") {
		t.Fatalf("tag check missed: %v", err)
	}
	n, err := Eval(h, fir.OpLen, []heap.Value{p}, fir.TyInt)
	if err != nil || n.I != 4 {
		t.Fatalf("len = %v, %v", n, err)
	}
	q, err := Eval(h, fir.OpPtrAdd, []heap.Value{p, heap.IntVal(2)}, fir.TyPtr)
	if err != nil || q.Off != 2 {
		t.Fatalf("ptradd = %v, %v", q, err)
	}
	off, err := Eval(h, fir.OpPtrOff, []heap.Value{q}, fir.TyInt)
	if err != nil || off.I != 2 {
		t.Fatalf("ptroff = %v, %v", off, err)
	}
	base, err := Eval(h, fir.OpPtrBase, []heap.Value{q}, fir.TyPtr)
	if err != nil || base.Off != 0 {
		t.Fatalf("ptrbase = %v, %v", base, err)
	}
	eq, err := Eval(h, fir.OpPtrEq, []heap.Value{p, base}, fir.TyInt)
	if err != nil || eq.I != 1 {
		t.Fatalf("ptreq = %v, %v", eq, err)
	}
	null, err := Eval(h, fir.OpPtrNull, nil, fir.TyPtr)
	if err != nil || !null.IsNull() {
		t.Fatalf("ptrnull = %v, %v", null, err)
	}
	isn, err := Eval(h, fir.OpPtrIsNil, []heap.Value{null}, fir.TyInt)
	if err != nil || isn.I != 1 {
		t.Fatalf("ptrisnil = %v, %v", isn, err)
	}
}

func TestCheckKind(t *testing.T) {
	if err := CheckKind(heap.IntVal(1), fir.TyInt); err != nil {
		t.Fatal(err)
	}
	if err := CheckKind(heap.IntVal(1), fir.TyFloat); err == nil {
		t.Fatal("int passed as float")
	}
	if err := CheckKind(heap.FunVal(2), fir.TyFun(fir.TyInt)); err != nil {
		t.Fatal(err)
	}
	if err := CheckKind(heap.UnitVal(), fir.TyUnit); err != nil {
		t.Fatal(err)
	}
}

// Property: integer comparison operators agree with Go's.
func TestComparisonsQuick(t *testing.T) {
	h := heap.New(heap.Config{})
	f := func(a, b int64) bool {
		lt, _ := Eval(h, fir.OpLt, []heap.Value{heap.IntVal(a), heap.IntVal(b)}, fir.TyInt)
		le, _ := Eval(h, fir.OpLe, []heap.Value{heap.IntVal(a), heap.IntVal(b)}, fir.TyInt)
		eq, _ := Eval(h, fir.OpEq, []heap.Value{heap.IntVal(a), heap.IntVal(b)}, fir.TyInt)
		return (lt.I == 1) == (a < b) && (le.I == 1) == (a <= b) && (eq.I == 1) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
