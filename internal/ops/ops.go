// Package ops implements the evaluation of FIR primitive operators against
// the runtime heap. Both backends — the interpreter (internal/vm) and the
// RISC machine (internal/risc) — evaluate operators through this package,
// guaranteeing the two runtime environments agree on semantics (the paper's
// architecture-independence story depends on it).
package ops

import (
	"fmt"

	"repro/internal/fir"
	"repro/internal/heap"
)

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Eval applies op to args. For OpLoad, dst declares the expected type of
// the loaded word and the tag is checked (the runtime type checking of §3).
func Eval(h *heap.Heap, op fir.Op, args []heap.Value, dst fir.Type) (heap.Value, error) {
	ival := func(i int) (int64, error) {
		if args[i].Kind != heap.KInt {
			return 0, fmt.Errorf("ops: %s operand %d is %s, want int", op, i, args[i].Kind)
		}
		return args[i].I, nil
	}
	fval := func(i int) (float64, error) {
		if args[i].Kind != heap.KFloat {
			return 0, fmt.Errorf("ops: %s operand %d is %s, want float", op, i, args[i].Kind)
		}
		return args[i].F, nil
	}
	pval := func(i int) (heap.Value, error) {
		if args[i].Kind != heap.KPtr {
			return heap.Value{}, fmt.Errorf("ops: %s operand %d is %s, want ptr", op, i, args[i].Kind)
		}
		return args[i], nil
	}

	switch op {
	case fir.OpAdd, fir.OpSub, fir.OpMul, fir.OpDiv, fir.OpMod,
		fir.OpAnd, fir.OpOr, fir.OpXor, fir.OpShl, fir.OpShr,
		fir.OpEq, fir.OpNe, fir.OpLt, fir.OpLe, fir.OpGt, fir.OpGe:
		x, err := ival(0)
		if err != nil {
			return heap.Value{}, err
		}
		y, err := ival(1)
		if err != nil {
			return heap.Value{}, err
		}
		return evalIntBinary(op, x, y)

	case fir.OpNeg:
		x, err := ival(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.IntVal(-x), nil
	case fir.OpNot:
		x, err := ival(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.IntVal(b2i(x == 0)), nil

	case fir.OpFAdd, fir.OpFSub, fir.OpFMul, fir.OpFDiv,
		fir.OpFEq, fir.OpFNe, fir.OpFLt, fir.OpFLe, fir.OpFGt, fir.OpFGe:
		x, err := fval(0)
		if err != nil {
			return heap.Value{}, err
		}
		y, err := fval(1)
		if err != nil {
			return heap.Value{}, err
		}
		return evalFloatBinary(op, x, y), nil

	case fir.OpFNeg:
		x, err := fval(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.FloatVal(-x), nil

	case fir.OpIntToFloat:
		x, err := ival(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.FloatVal(float64(x)), nil
	case fir.OpFloatToInt:
		x, err := fval(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.IntVal(int64(x)), nil

	case fir.OpAlloc:
		n, err := ival(0)
		if err != nil {
			return heap.Value{}, err
		}
		return h.Alloc(n)
	case fir.OpLoad:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		off, err := ival(1)
		if err != nil {
			return heap.Value{}, err
		}
		v, err := h.Load(p, off)
		if err != nil {
			return heap.Value{}, err
		}
		if err := CheckKind(v, dst); err != nil {
			return heap.Value{}, err
		}
		return v, nil
	case fir.OpStore:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		off, err := ival(1)
		if err != nil {
			return heap.Value{}, err
		}
		if err := h.Store(p, off, args[2]); err != nil {
			return heap.Value{}, err
		}
		return heap.UnitVal(), nil
	case fir.OpLen:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		n, err := h.BlockSize(p)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.IntVal(n), nil
	case fir.OpPtrAdd:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		d, err := ival(1)
		if err != nil {
			return heap.Value{}, err
		}
		p.Off += d
		return p, nil
	case fir.OpPtrBase:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		p.Off = 0
		return p, nil
	case fir.OpPtrOff:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.IntVal(p.Off), nil
	case fir.OpPtrEq:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		q, err := pval(1)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.BoolVal(p.Equal(q)), nil
	case fir.OpPtrNull:
		return heap.Null(), nil
	case fir.OpPtrIsNil:
		p, err := pval(0)
		if err != nil {
			return heap.Value{}, err
		}
		return heap.BoolVal(p.IsNull()), nil
	case fir.OpMove:
		return args[0], nil
	default:
		return heap.Value{}, fmt.Errorf("ops: unknown operator %v", op)
	}
}

func evalIntBinary(op fir.Op, x, y int64) (heap.Value, error) {
	switch op {
	case fir.OpAdd:
		return heap.IntVal(x + y), nil
	case fir.OpSub:
		return heap.IntVal(x - y), nil
	case fir.OpMul:
		return heap.IntVal(x * y), nil
	case fir.OpDiv:
		if y == 0 {
			return heap.Value{}, fmt.Errorf("ops: integer division by zero")
		}
		return heap.IntVal(x / y), nil
	case fir.OpMod:
		if y == 0 {
			return heap.Value{}, fmt.Errorf("ops: integer modulo by zero")
		}
		return heap.IntVal(x % y), nil
	case fir.OpAnd:
		return heap.IntVal(x & y), nil
	case fir.OpOr:
		return heap.IntVal(x | y), nil
	case fir.OpXor:
		return heap.IntVal(x ^ y), nil
	case fir.OpShl:
		if y < 0 || y > 63 {
			return heap.Value{}, fmt.Errorf("ops: shift amount %d out of range", y)
		}
		return heap.IntVal(x << uint(y)), nil
	case fir.OpShr:
		if y < 0 || y > 63 {
			return heap.Value{}, fmt.Errorf("ops: shift amount %d out of range", y)
		}
		return heap.IntVal(x >> uint(y)), nil
	case fir.OpEq:
		return heap.IntVal(b2i(x == y)), nil
	case fir.OpNe:
		return heap.IntVal(b2i(x != y)), nil
	case fir.OpLt:
		return heap.IntVal(b2i(x < y)), nil
	case fir.OpLe:
		return heap.IntVal(b2i(x <= y)), nil
	case fir.OpGt:
		return heap.IntVal(b2i(x > y)), nil
	case fir.OpGe:
		return heap.IntVal(b2i(x >= y)), nil
	default:
		return heap.Value{}, fmt.Errorf("ops: %v is not an integer binary operator", op)
	}
}

func evalFloatBinary(op fir.Op, x, y float64) heap.Value {
	switch op {
	case fir.OpFAdd:
		return heap.FloatVal(x + y)
	case fir.OpFSub:
		return heap.FloatVal(x - y)
	case fir.OpFMul:
		return heap.FloatVal(x * y)
	case fir.OpFDiv:
		return heap.FloatVal(x / y)
	case fir.OpFEq:
		return heap.BoolVal(x == y)
	case fir.OpFNe:
		return heap.BoolVal(x != y)
	case fir.OpFLt:
		return heap.BoolVal(x < y)
	case fir.OpFLe:
		return heap.BoolVal(x <= y)
	case fir.OpFGt:
		return heap.BoolVal(x > y)
	case fir.OpFGe:
		return heap.BoolVal(x >= y)
	default:
		return heap.Value{}
	}
}

// CheckKind verifies a runtime value against a FIR type.
func CheckKind(v heap.Value, t fir.Type) error {
	var want heap.Kind
	switch t.Kind {
	case fir.KindInt:
		want = heap.KInt
	case fir.KindFloat:
		want = heap.KFloat
	case fir.KindPtr:
		want = heap.KPtr
	case fir.KindFun:
		want = heap.KFun
	case fir.KindUnit:
		want = heap.KUnit
	default:
		return fmt.Errorf("ops: unknown type %v", t)
	}
	if v.Kind != want {
		return fmt.Errorf("ops: value %s does not have type %s", v, t)
	}
	return nil
}
