// Package gc provides the collection policy for the MCC runtime heap. The
// mechanism (generational mark-sweep with sliding compaction, §4 of the
// paper) lives in internal/heap because it manipulates the heap's
// representation invariants directly — the paper notes that "process
// migration and speculation are tightly integrated with the garbage
// collector". This package decides when to run a minor collection, when to
// escalate to a major one, and records policy-level statistics.
package gc

import "repro/internal/heap"

// Policy is a heap.Collector: minor-first generational collection with
// escalation to a major (full, compacting) collection when the minor phase
// does not recover enough space, plus a periodic forced major collection
// to bound fragmentation and drift.
type Policy struct {
	// HeadroomFactor escalates to a major collection when, after a minor
	// collection, used+need exceeds this fraction of the arena. Default
	// 0.85.
	HeadroomFactor float64
	// MajorEvery forces a major collection after this many consecutive
	// minors. Default 16. Zero disables the forcing.
	MajorEvery int

	minorsSinceMajor int
	stats            Stats
}

// Stats counts policy decisions.
type Stats struct {
	MinorRuns     uint64
	MajorRuns     uint64
	Escalations   uint64 // minor collections that escalated to major
	ForcedMajors  uint64 // majors forced by MajorEvery
	WordsRecycled uint64 // arena words recovered across all collections
}

// New returns a policy with default tuning.
func New() *Policy {
	return &Policy{HeadroomFactor: 0.85, MajorEvery: 16}
}

// Stats returns a copy of the policy counters.
func (p *Policy) Stats() Stats { return p.stats }

// Collect implements heap.Collector.
func (p *Policy) Collect(h *heap.Heap, need int) error {
	headroom := p.HeadroomFactor
	if headroom <= 0 || headroom > 1 {
		headroom = 0.85
	}
	before := h.UsedWords()

	forced := p.MajorEvery > 0 && p.minorsSinceMajor >= p.MajorEvery
	if forced {
		h.CollectMajor()
		p.stats.MajorRuns++
		p.stats.ForcedMajors++
		p.minorsSinceMajor = 0
	} else {
		h.CollectMinor()
		p.stats.MinorRuns++
		p.minorsSinceMajor++
		if float64(h.UsedWords()+need) > headroom*float64(h.ArenaWords()) {
			h.CollectMajor()
			p.stats.MajorRuns++
			p.stats.Escalations++
			p.minorsSinceMajor = 0
		}
	}
	if after := h.UsedWords(); after < before {
		p.stats.WordsRecycled += uint64(before - after)
	}
	return nil
}

// MajorOnly is a degenerate policy that always runs a full compacting
// collection. It exists for ablations and for deterministic tests that
// need every collection to be total.
type MajorOnly struct{ Runs uint64 }

// Collect implements heap.Collector.
func (m *MajorOnly) Collect(h *heap.Heap, need int) error {
	h.CollectMajor()
	m.Runs++
	return nil
}
