package gc

import (
	"testing"

	"repro/internal/heap"
)

// alloc pressure below the arena cap exercises the policy's minor/major
// escalation paths.
func churn(t *testing.T, h *heap.Heap, blocks, size int) {
	t.Helper()
	for i := 0; i < blocks; i++ {
		if _, err := h.Alloc(int64(size)); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
}

func TestPolicyKeepsProcessUnderPressure(t *testing.T) {
	h := heap.New(heap.Config{InitialWords: 2048, MaxWords: 4096})
	p := New()
	h.SetCollector(p)
	var keep heap.Value
	h.AddRoots(func(yield func(heap.Value)) { yield(keep) })
	var err error
	keep, err = h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Store(keep, 0, heap.IntVal(5)); err != nil {
		t.Fatal(err)
	}
	churn(t, h, 4000, 16)
	if got, err := h.Load(keep, 0); err != nil || got.I != 5 {
		t.Fatalf("survivor = %v, %v", got, err)
	}
	s := p.Stats()
	if s.MinorRuns == 0 {
		t.Fatal("policy never ran a minor collection")
	}
	if s.WordsRecycled == 0 {
		t.Fatal("policy recycled nothing")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyEscalatesToMajor(t *testing.T) {
	h := heap.New(heap.Config{InitialWords: 1024, MaxWords: 1024})
	p := New()
	p.MajorEvery = 0 // only escalation can trigger majors
	h.SetCollector(p)
	// Fill most of the arena with live data so minors can't make room.
	live := make([]heap.Value, 0, 8)
	h.AddRoots(func(yield func(heap.Value)) {
		for _, v := range live {
			yield(v)
		}
	})
	for i := 0; i < 9; i++ {
		v, err := h.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, v)
	}
	// Churn garbage through the remaining headroom.
	for i := 0; i < 200; i++ {
		if _, err := h.Alloc(40); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if p.Stats().Escalations == 0 {
		t.Fatal("no escalation to major despite high live ratio")
	}
}

func TestPolicyForcedMajor(t *testing.T) {
	h := heap.New(heap.Config{InitialWords: 512, MaxWords: 512})
	p := New()
	p.MajorEvery = 3
	h.SetCollector(p)
	churn(t, h, 400, 16)
	if p.Stats().ForcedMajors == 0 {
		t.Fatalf("no forced major after %d minors: %+v", p.Stats().MinorRuns, p.Stats())
	}
}

func TestMajorOnly(t *testing.T) {
	h := heap.New(heap.Config{InitialWords: 256, MaxWords: 256})
	m := &MajorOnly{}
	h.SetCollector(m)
	churn(t, h, 100, 16)
	if m.Runs == 0 {
		t.Fatal("MajorOnly never ran")
	}
	if h.Stats().MajorGCs != m.Runs {
		t.Fatalf("heap majors %d != policy runs %d", h.Stats().MajorGCs, m.Runs)
	}
}
