// Package repro_test is the benchmark harness regenerating every
// experimental result in the paper's §5 plus the design-choice ablations
// called out in DESIGN.md. Each benchmark maps to a row of EXPERIMENTS.md:
//
//	E1  BenchmarkMigrationUntrusted     — 1 MB-heap migration with FIR
//	                                      re-compilation at the target
//	E2  BenchmarkMigrationBinary        — trusted binary migration
//	E3a BenchmarkSpeculateEntry         — speculation entry cost
//	E3b BenchmarkSpeculationAbort/p=N   — abort cost vs heap mutation %
//	E3c BenchmarkSpeculationCommit/p=N  — commit cost vs heap mutation %
//	E4  BenchmarkContextSwitch          — scheduler context-switch yardstick
//	F2  BenchmarkGridFailureFree,
//	    BenchmarkGridRecovery           — grid run, failure and recovery
//	A1  BenchmarkRollbackSpecVsCheckpoint — COW rollback vs checkpoint-file
//	                                      restore
//	A2  BenchmarkCheckpointInterval/k=N — checkpoint-interval trade-off
//	A3  BenchmarkPointerTableChecks     — safety-check overhead
//	A4  BenchmarkGCCompactionLocality   — sliding vs breadth-first copying
package repro_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fir"
	"repro/internal/grid"
	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/migrate"
	"repro/internal/risc"
	"repro/internal/rt"
	"repro/internal/vm"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// E1/E2 — process migration. The paper: 4 s untrusted (10% network) and
// <1 s binary (30% network) for a 1 MB heap on a 100 Mbps link.

// buildMigratingProcess creates a VM process whose heap holds ~words live
// words in 64-word blocks, positioned just before a migrate instruction.
func buildMigratingProcess(b testing.TB, words int, target string) *vm.Process {
	b.Helper()
	// Build the heap directly (faster than interpreting an init loop) and
	// construct a minimal FIR program that migrates and halts. The heap
	// contents come from a directory block so everything is reachable.
	nBlocks := words / 64
	mb := fir.NewBuilder()
	mb.Extern("dir", fir.TyPtr, "build_heap")
	mb.Extern("tgt", fir.TyPtr, "mig_target")
	mainF := fir.Fn("main", nil, mb.Migrate(1, fir.V("tgt"), fir.I(0), "after", fir.V("dir")))
	ab := fir.NewBuilder()
	ab.Let("blk", fir.TyPtr, fir.OpLoad, fir.V("dir"), fir.I(0))
	ab.Let("x", fir.TyInt, fir.OpLoad, fir.V("blk"), fir.I(0))
	afterF := fir.Fn("after", fir.Ps("dir", fir.TyPtr), ab.Halt(fir.V("x")))
	prog := fir.NewProgram("main", mainF, afterF)
	// Pad the program to a realistic application size (the paper migrated
	// a real application, not a two-function stub): the whole code body is
	// shipped, verified and recompiled at the destination.
	for i := 0; i < 400; i++ {
		pb := fir.NewBuilder()
		cur := fir.Atom(fir.V("a"))
		for j := 0; j < 20; j++ {
			d := pb.Fresh("t")
			pb.Let(d, fir.TyInt, fir.OpAdd, cur, fir.I(int64(j)))
			cur = fir.V(d)
		}
		prog.AddFunc(fir.Fn(fmt.Sprintf("pad%d", i), fir.Ps("a", fir.TyInt), pb.Halt(cur)))
	}

	p := vm.NewProcess(prog, vm.Config{
		Fuel: 100_000_000,
		Heap: heap.Config{InitialWords: words + words/4, MaxWords: 8 * words},
	})
	p.RegisterExtern("mig_target", fir.ExternSig{Result: fir.TyPtr},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			return r.Heap().AllocString(target)
		})
	p.RegisterExtern("build_heap", fir.ExternSig{Result: fir.TyPtr},
		func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
			h := r.Heap()
			dir, err := h.Alloc(int64(nBlocks))
			if err != nil {
				return heap.Value{}, err
			}
			r.Pin(dir)
			for i := 0; i < nBlocks; i++ {
				blk, err := h.Alloc(64)
				if err != nil {
					return heap.Value{}, err
				}
				for j := int64(0); j < 64; j++ {
					if err := h.Store(blk, j, heap.IntVal(int64(i)*64+j)); err != nil {
						return heap.Value{}, err
					}
				}
				if err := h.Store(dir, int64(i), blk); err != nil {
					return heap.Value{}, err
				}
			}
			return dir, nil
		})
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	return p
}

// migServerExterns are the externs the server must know to re-typecheck.
func migServerExterns() rt.Registry {
	return rt.Registry{
		"mig_target": {Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return r.Heap().AllocString("unused://x")
			}},
		"build_heap": {Sig: fir.ExternSig{Result: fir.TyPtr},
			Fn: func(r rt.Runtime, a []heap.Value) (heap.Value, error) {
				return heap.Null(), nil
			}},
	}
}

func benchMigration(b *testing.B, binary bool, backend migrate.Backend, throttleBps int64) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	resumed := make(chan rt.Proc, 16)
	srv := migrate.NewServer(l, migrate.ServerConfig{
		Backend:     backend,
		Externs:     migServerExterns(),
		AllowBinary: true,
		Config:      migrate.ProcessConfig{Fuel: 1_000_000},
		OnResume:    func(p rt.Proc) { resumed <- p },
	})
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	scheme := "migrate"
	if binary {
		scheme = "migrate-bin"
	}
	target := scheme + "://" + l.Addr().String()
	const heapWords = 128 * 1024 // 1 MiB at 8 bytes/word

	var packTotal, xferTotal time.Duration
	var bytesTotal int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := buildMigratingProcess(b, heapWords, target)
		mig := &migrate.Migrator{Dial: cluster.ThrottledDialer(throttleBps)}
		p.SetMigrateHandler(mig.Handle)
		b.StartTimer()

		st, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		if st != rt.StatusMigrated {
			b.Fatalf("status = %s", st)
		}
		// Wait for the server side to finish resuming.
		select {
		case rp := <-resumed:
			if _, err := rp.Run(); err != nil {
				b.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			b.Fatal("server never resumed the process")
		}
		tm := mig.LastTimings()
		packTotal += tm.Pack
		xferTotal += tm.Transfer
		bytesTotal += tm.Bytes
	}
	b.StopTimer()
	un := srv.Stats().LastUnpack
	b.ReportMetric(float64(packTotal.Nanoseconds())/float64(b.N), "pack-ns/op")
	b.ReportMetric(float64(xferTotal.Nanoseconds())/float64(b.N), "transfer-ns/op")
	b.ReportMetric(float64(un.Check.Nanoseconds()), "check-ns/last")
	b.ReportMetric(float64(un.Compile.Nanoseconds()), "recompile-ns/last")
	b.ReportMetric(float64(un.Restore.Nanoseconds()), "restore-ns/last")
	b.ReportMetric(float64(bytesTotal)/float64(b.N), "bytes/op")
}

func BenchmarkMigrationUntrusted(b *testing.B) {
	// Untrusted: the server type-checks and recompiles the FIR for the
	// RISC target. 100 Mbps link, as in the paper.
	benchMigration(b, false, migrate.BackendRISC, 100_000_000)
}

func BenchmarkMigrationBinary(b *testing.B) {
	// Trusted binary protocol: no verification, no recompilation,
	// interpreter target. Same 100 Mbps link.
	benchMigration(b, true, migrate.BackendVM, 100_000_000)
}

// ---------------------------------------------------------------------------
// E3 — speculation costs vs heap mutation percentile. Paper (200 KB heap):
// entry ≈40 µs flat; abort 120→135 µs; commit 81→87 µs for 10%→100%.

const (
	specBlocks    = 400
	specBlockSize = 64 // 400×64 words ≈ 200 KiB at 8 bytes/word
)

func buildRegion(b *testing.B) (*core.Region, []core.Ref) {
	b.Helper()
	r := core.NewRegion(heap.Config{InitialWords: 4 * specBlocks * specBlockSize})
	refs := make([]core.Ref, specBlocks)
	for i := range refs {
		ref, err := r.Alloc(specBlockSize)
		if err != nil {
			b.Fatal(err)
		}
		r.Pin(ref)
		refs[i] = ref
	}
	return r, refs
}

func mutate(b *testing.B, r *core.Region, refs []core.Ref, percent int) {
	b.Helper()
	n := len(refs) * percent / 100
	for i := 0; i < n; i++ {
		if err := r.SetInt(refs[i], 0, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeculateEntry(b *testing.B) {
	r, _ := buildRegion(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := r.Speculate()
		b.StopTimer()
		if err := r.Commit(id); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkSpeculationAbort(b *testing.B) {
	for _, p := range []int{10, 25, 50, 75, 100} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			r, refs := buildRegion(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := r.Speculate()
				mutate(b, r, refs, p)
				b.StartTimer()
				if err := r.Abort(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSpeculationCommit(b *testing.B) {
	for _, p := range []int{10, 25, 50, 75, 100} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			r, refs := buildRegion(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				id := r.Speculate()
				mutate(b, r, refs, p)
				b.StartTimer()
				if err := r.Commit(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E4 — context-switch yardstick: two VM processes with ≈200 KB heaps under
// the step scheduler. The paper measured ≈300 µs on its hardware; the
// shape requirement is speculation ops ≪ context switch + compute quantum.

func spinProcess(b *testing.B) *vm.Process {
	b.Helper()
	src := `
int main() {
	ptr block = alloc(25000); // ~200 KB resident heap
	int i = 0;
	while (1 == 1) {
		block[i % 25000] = i;
		i += 1;
	}
	return 0;
}`
	prog, err := lang.Compile(src, rt.StdExterns().Sigs())
	if err != nil {
		b.Fatal(err)
	}
	p := vm.NewProcess(prog, vm.Config{
		Heap: heap.Config{InitialWords: 64 * 1024, MaxWords: 1 << 22},
	})
	if err := p.Start(); err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkContextSwitch(b *testing.B) {
	s := vm.NewScheduler(100) // 100-step quantum per turn
	if err := s.Add(spinProcess(b)); err != nil {
		b.Fatal(err)
	}
	if err := s.Add(spinProcess(b)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Turn() // two quanta + two context switches
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(s.Switches()), "ns/switch")
}

// ---------------------------------------------------------------------------
// F2 — the grid application: failure-free baseline and recovery run.

func benchGridParams(b *testing.B, p grid.Params, fail *grid.FailurePlan) {
	prog, err := grid.CompileProgram()
	if err != nil {
		b.Fatal(err)
	}
	want := grid.Reference(p)
	var rollbacks uint64
	var mem memProbe
	b.ReportAllocs()
	b.ResetTimer()
	mem.start()
	for i := 0; i < b.N; i++ {
		res, err := grid.RunProgram(prog, p, fail, 2*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		for n := range want {
			if res.Checksums[n] != want[n] {
				b.Fatalf("node %d checksum %d, want %d", n, res.Checksums[n], want[n])
			}
		}
		rollbacks += res.Rollbacks
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/op")
	recordBench(BenchRecord{
		App:            "grid",
		Name:           b.Name(),
		Engine:         engine.DefaultName, // the legacy grid harness runs the default engine
		Iterations:     b.N,
		NsPerOp:        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		RollbacksPerOp: float64(rollbacks) / float64(b.N),
		Nodes:          p.Nodes,
		RowsPerNode:    p.RowsPerNode,
		Cols:           p.Cols,
		Steps:          p.Steps,
		CkInterval:     p.CheckpointInterval,
		Workers:        p.Workers,
	})
}

func benchGrid(b *testing.B, fail *grid.FailurePlan, ck int) {
	benchGridParams(b, grid.Params{Nodes: 3, RowsPerNode: 4, Cols: 8, Steps: 16, CheckpointInterval: ck}, fail)
}

// BenchmarkGridFailureFree compares worker-pool widths on a grid large
// enough that per-step compute dominates the border exchange: workers=1
// serializes node quanta; wider pools run them concurrently, and every
// width produces bit-identical checksums. The "baseline" case keeps the
// BenchmarkGridRecovery workload so F2's recovery overhead (Recovery/op
// minus FailureFree/baseline/op) still compares like with like.
func BenchmarkGridFailureFree(b *testing.B) {
	b.Run("baseline", func(b *testing.B) { benchGrid(b, nil, 4) })
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchGridParams(b, grid.Params{
				Nodes: 4, RowsPerNode: 16, Cols: 24, Steps: 8,
				CheckpointInterval: 4, Workers: w,
			}, nil)
		})
	}
}

func BenchmarkGridRecovery(b *testing.B) {
	benchGrid(b, &grid.FailurePlan{Node: 1, AfterCheckpoints: 1, RestartDelay: 10 * time.Millisecond}, 4)
}

// ---------------------------------------------------------------------------
// A1 — rollback via speculation (COW) vs rollback via checkpoint file.
// The paper: restoring from a checkpoint "can be very expensive" because
// the whole state is written/reconstructed and the program recompiled.

func BenchmarkRollbackSpecVsCheckpoint(b *testing.B) {
	b.Run("speculation", func(b *testing.B) {
		r, refs := buildRegion(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			id := r.Speculate()
			mutate(b, r, refs, 10)
			b.StartTimer()
			if err := r.Abort(id); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpointFile", func(b *testing.B) {
		// The checkpoint path: serialize the full image (pack), then
		// decode + type-check + recompile + rebuild the heap (unpack) —
		// what rollback costs when implemented with migration (§4.3).
		target := "checkpoint://ck"
		p := buildMigratingProcess(b, specBlocks*specBlockSize, target)
		store := cluster.NewMemStore()
		mig := &migrate.Migrator{Store: store}
		p.SetMigrateHandler(mig.Handle)
		// Run to the migrate instruction: writes the checkpoint.
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
		data, err := store.Get("ck")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			img, err := wire.DecodeImage(data)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := migrate.Unpack(img, migrate.Options{
				Backend: migrate.BackendRISC,
				Externs: migServerExterns(),
				Config:  vm.Config{Fuel: 1000},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// A2 — the checkpoint_interval trade-off under a failure (total run time
// including recovery, as a function of the interval).

func BenchmarkCheckpointInterval(b *testing.B) {
	for _, ck := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", ck), func(b *testing.B) {
			benchGrid(b, &grid.FailurePlan{Node: 1, AfterCheckpoints: 1, RestartDelay: 10 * time.Millisecond}, ck)
		})
	}
}

// ---------------------------------------------------------------------------
// A3 — pointer-table safety-check overhead (§4.1.1: "this level of
// transparency has a cost").

func BenchmarkPointerTableChecks(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		h := heap.New(heap.Config{InitialWords: 1 << 16, DisableChecks: disable})
		ptr, err := h.Alloc(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(i) & 1023
			if err := h.Store(ptr, off, heap.IntVal(int64(i))); err != nil {
				b.Fatal(err)
			}
			if _, err := h.Load(ptr, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("checked", func(b *testing.B) { run(b, false) })
	b.Run("unchecked", func(b *testing.B) { run(b, true) })
}

// ---------------------------------------------------------------------------
// A4 — compaction order: sliding (allocation order, preserves temporal
// locality) vs breadth-first copying (the paper's comparison, §4).

func BenchmarkGCCompactionLocality(b *testing.B) {
	build := func() *heap.Heap {
		h := heap.New(heap.Config{InitialWords: 1 << 18, MaxWords: 1 << 22})
		var pins []heap.Value
		h.AddRoots(func(yield func(heap.Value)) {
			for _, v := range pins {
				yield(v)
			}
		})
		// Depth-first tree: allocation order diverges from BFS order.
		var mk func(depth int) heap.Value
		mk = func(depth int) heap.Value {
			n, err := h.Alloc(4)
			if err != nil {
				b.Fatal(err)
			}
			pins = append(pins, n)
			if depth > 0 {
				l := mk(depth - 1)
				r := mk(depth - 1)
				_ = h.Store(n, 1, l)
				_ = h.Store(n, 2, r)
			}
			pins = pins[:len(pins)-1]
			return n
		}
		root := mk(10)
		pins = []heap.Value{root}
		return h
	}
	b.Run("sliding", func(b *testing.B) {
		var score float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			h := build()
			b.StartTimer()
			h.CollectMajor()
			score = h.TemporalLocalityScore()
		}
		b.ReportMetric(score, "locality-gap")
	})
	b.Run("bfsCopy", func(b *testing.B) {
		var score float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			h := build()
			b.StartTimer()
			h.CollectMajorBFS()
			score = h.TemporalLocalityScore()
		}
		b.ReportMetric(score, "locality-gap")
	})
}

// ---------------------------------------------------------------------------
// A5 — the FIR optimizer's effect on the grid program: interpreter steps
// and compiled code size, optimized vs. unoptimized.

func BenchmarkOptimizerEffect(b *testing.B) {
	run := func(b *testing.B, optimize bool) {
		prog, err := lang.Compile(grid.Source, grid.ExternSigs())
		if err != nil {
			b.Fatal(err)
		}
		if optimize {
			fir.Optimize(prog)
		}
		mod, err := risc.Compile(prog)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(mod.Code)), "risc-instrs")
		p := grid.Params{Nodes: 1, RowsPerNode: 4, Cols: 8, Steps: 8, CheckpointInterval: 4}
		var steps uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := grid.RunProgram(prog, p, nil, time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			want := grid.Reference(p)
			if res.Checksums[0] != want[0] {
				b.Fatalf("checksum %d, want %d", res.Checksums[0], want[0])
			}
			steps += uint64(res.Elapsed.Nanoseconds())
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("optimized", func(b *testing.B) { run(b, true) })
}
