package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// -benchjson FILE makes the grid benchmarks append machine-readable
// results to FILE (a JSON array), so CI can record the performance
// trajectory across commits instead of scraping `go test -bench` text:
//
//	go test -bench Grid -benchtime 1x -benchjson BENCH_grid.json .
//
// -benchdir DIR writes one BENCH_<app>.json per workload instead, so
// the per-app benchmarks (BenchmarkWorkloads) each leave their own
// trajectory file:
//
//	go test -bench Workloads -benchtime 1x -benchdir . .
var (
	benchJSON = flag.String("benchjson", "", "write grid benchmark results as a JSON array to this file")
	benchDir  = flag.String("benchdir", "", "write per-workload benchmark results as BENCH_<app>.json files into this directory")
)

// BenchRecord is one benchmark's aggregated outcome.
type BenchRecord struct {
	App            string  `json:"app,omitempty"`
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	RollbacksPerOp float64 `json:"rollbacks_per_op"`
	Nodes          int     `json:"nodes"`
	RowsPerNode    int     `json:"rows_per_node,omitempty"`
	Cols           int     `json:"cols,omitempty"`
	Size           int     `json:"size,omitempty"`
	Aux            int     `json:"aux,omitempty"`
	Steps          int     `json:"steps"`
	CkInterval     int     `json:"checkpoint_interval"`
	Workers        int     `json:"workers"`

	// Checkpoint pipeline metrics (zero when the run wrote no
	// checkpoints). Bytes and pause are per checkpoint; recovery is per
	// restore. CkptMode is "full", "delta" or "async".
	CkptMode          string  `json:"ckpt_mode,omitempty"`
	CkptPerOp         float64 `json:"checkpoints_per_op,omitempty"`
	CkptBytesPerCkpt  float64 `json:"ckpt_bytes_per_checkpoint,omitempty"`
	CkptPauseNsPerCk  float64 `json:"ckpt_pause_ns_per_checkpoint,omitempty"`
	RecoveryNsPerRest float64 `json:"recovery_ns_per_restore,omitempty"`
}

var benchRecords struct {
	mu   sync.Mutex
	list []BenchRecord
}

func recordBench(r BenchRecord) {
	benchRecords.mu.Lock()
	benchRecords.list = append(benchRecords.list, r)
	benchRecords.mu.Unlock()
}

// writeJSON marshals one record list to a file.
func writeJSON(path string, list []BenchRecord) error {
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecords.mu.Lock()
	list := benchRecords.list
	benchRecords.mu.Unlock()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	if *benchJSON != "" && len(list) > 0 {
		if err := writeJSON(*benchJSON, list); err != nil {
			fail(err)
		}
	}
	if *benchDir != "" && len(list) > 0 {
		if err := os.MkdirAll(*benchDir, 0o755); err != nil {
			fail(err)
		}
		// One trajectory file per app; records without an app tag are the
		// legacy grid benchmarks.
		byApp := make(map[string][]BenchRecord)
		for _, r := range list {
			app := r.App
			if app == "" {
				app = "grid"
			}
			byApp[app] = append(byApp[app], r)
		}
		for app, recs := range byApp {
			if err := writeJSON(filepath.Join(*benchDir, "BENCH_"+app+".json"), recs); err != nil {
				fail(err)
			}
		}
	}
	os.Exit(code)
}
