package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"
)

// -benchjson FILE makes the grid benchmarks append machine-readable
// results to FILE (a JSON array), so CI can record the performance
// trajectory across commits instead of scraping `go test -bench` text:
//
//	go test -bench Grid -benchtime 1x -benchjson BENCH_grid.json .
var benchJSON = flag.String("benchjson", "", "write grid benchmark results as a JSON array to this file")

// BenchRecord is one benchmark's aggregated outcome.
type BenchRecord struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	RollbacksPerOp float64 `json:"rollbacks_per_op"`
	Nodes          int     `json:"nodes"`
	RowsPerNode    int     `json:"rows_per_node"`
	Cols           int     `json:"cols"`
	Steps          int     `json:"steps"`
	CkInterval     int     `json:"checkpoint_interval"`
	Workers        int     `json:"workers"`
}

var benchRecords struct {
	mu   sync.Mutex
	list []BenchRecord
}

func recordBench(r BenchRecord) {
	benchRecords.mu.Lock()
	benchRecords.list = append(benchRecords.list, r)
	benchRecords.mu.Unlock()
}

func TestMain(m *testing.M) {
	code := m.Run()
	if *benchJSON != "" {
		benchRecords.mu.Lock()
		list := benchRecords.list
		benchRecords.mu.Unlock()
		if len(list) > 0 {
			data, err := json.MarshalIndent(list, "", "  ")
			if err == nil {
				err = os.WriteFile(*benchJSON, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				if code == 0 {
					code = 1
				}
			}
		}
	}
	os.Exit(code)
}
