package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

// -benchjson FILE makes the grid benchmarks append machine-readable
// results to FILE (a JSON array), so CI can record the performance
// trajectory across commits instead of scraping `go test -bench` text:
//
//	go test -bench Grid -benchtime 1x -benchjson BENCH_grid.json .
//
// -benchdir DIR writes one BENCH_<app>.json per workload instead, so
// the per-app benchmarks (BenchmarkWorkloads) each leave their own
// trajectory file:
//
//	go test -bench Workloads -benchtime 1x -benchdir . .
var (
	benchJSON = flag.String("benchjson", "", "write grid benchmark results as a JSON array to this file")
	benchDir  = flag.String("benchdir", "", "write per-workload benchmark results as BENCH_<app>.json files into this directory")
)

// BenchRecord is one benchmark's aggregated outcome.
type BenchRecord struct {
	App            string  `json:"app,omitempty"`
	Name           string  `json:"name"`
	Engine         string  `json:"engine"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	RollbacksPerOp float64 `json:"rollbacks_per_op"`
	Nodes          int     `json:"nodes"`
	RowsPerNode    int     `json:"rows_per_node,omitempty"`
	Cols           int     `json:"cols,omitempty"`
	Size           int     `json:"size,omitempty"`
	Aux            int     `json:"aux,omitempty"`
	Steps          int     `json:"steps"`
	CkInterval     int     `json:"checkpoint_interval"`
	Workers        int     `json:"workers"`

	// Checkpoint pipeline metrics (zero when the run wrote no
	// checkpoints). Bytes and pause are per checkpoint; recovery is per
	// restore. CkptMode is "full", "delta" or "async".
	CkptMode          string  `json:"ckpt_mode,omitempty"`
	CkptPerOp         float64 `json:"checkpoints_per_op,omitempty"`
	CkptBytesPerCkpt  float64 `json:"ckpt_bytes_per_checkpoint,omitempty"`
	CkptPauseNsPerCk  float64 `json:"ckpt_pause_ns_per_checkpoint,omitempty"`
	RecoveryNsPerRest float64 `json:"recovery_ns_per_restore,omitempty"`

	// Checkpoint-store tier metrics (the BenchmarkStore* rows). Bytes at
	// rest is what the backing directory holds after the run — the
	// compressed-at-rest gate compares it across store specs. Put-wait
	// percentiles come from the storm gate's registry histogram.
	StoreSpec         string  `json:"store_spec,omitempty"`
	StoreBytesAtRest  float64 `json:"store_bytes_at_rest,omitempty"`
	StoreBytesPerCkpt float64 `json:"store_bytes_at_rest_per_checkpoint,omitempty"`
	StorePutWaitP50Ns float64 `json:"store_put_wait_p50_ns,omitempty"`
	StorePutWaitP95Ns float64 `json:"store_put_wait_p95_ns,omitempty"`
	StorePutWaitP99Ns float64 `json:"store_put_wait_p99_ns,omitempty"`
}

var benchRecords struct {
	mu   sync.Mutex
	list []BenchRecord
}

// memProbe samples the runtime allocation counters around a benchmark
// loop so records can carry allocs_per_op / bytes_per_op without scraping
// -benchmem output. Mallocs and TotalAlloc are monotonic, so GC between
// samples does not skew the delta; allocation by concurrent background
// goroutines (async committers, transport) is deliberately included — it
// is part of the run's cost.
type memProbe struct{ m0 runtime.MemStats }

func (mp *memProbe) start() { runtime.ReadMemStats(&mp.m0) }

func (mp *memProbe) perOp(n int) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if n <= 0 {
		return 0, 0
	}
	return float64(m1.Mallocs-mp.m0.Mallocs) / float64(n), float64(m1.TotalAlloc-mp.m0.TotalAlloc) / float64(n)
}

func recordBench(r BenchRecord) {
	benchRecords.mu.Lock()
	benchRecords.list = append(benchRecords.list, r)
	benchRecords.mu.Unlock()
}

// dedupe keeps the last record per benchmark name: with -benchtime Nx
// (N > 1) the framework runs a 1-iteration probe before the measured run,
// and the probe's record must not pollute the trajectory file.
func dedupe(list []BenchRecord) []BenchRecord {
	last := make(map[string]int, len(list))
	out := make([]BenchRecord, 0, len(list))
	for _, r := range list {
		if i, ok := last[r.Name]; ok {
			out[i] = r
			continue
		}
		last[r.Name] = len(out)
		out = append(out, r)
	}
	return out
}

// writeJSON marshals one record list to a file.
func writeJSON(path string, list []BenchRecord) error {
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func TestMain(m *testing.M) {
	code := m.Run()
	benchRecords.mu.Lock()
	list := dedupe(benchRecords.list)
	benchRecords.mu.Unlock()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		if code == 0 {
			code = 1
		}
	}
	if *benchJSON != "" && len(list) > 0 {
		if err := writeJSON(*benchJSON, list); err != nil {
			fail(err)
		}
	}
	if *benchDir != "" && len(list) > 0 {
		if err := os.MkdirAll(*benchDir, 0o755); err != nil {
			fail(err)
		}
		// One trajectory file per app; records without an app tag are the
		// legacy grid benchmarks.
		byApp := make(map[string][]BenchRecord)
		for _, r := range list {
			app := r.App
			if app == "" {
				app = "grid"
			}
			byApp[app] = append(byApp[app], r)
		}
		for app, recs := range byApp {
			if err := writeJSON(filepath.Join(*benchDir, "BENCH_"+app+".json"), recs); err != nil {
				fail(err)
			}
		}
	}
	os.Exit(code)
}
