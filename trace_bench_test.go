package repro_test

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid
)

// ---------------------------------------------------------------------------
// Trace overhead gate: the same failure-free grid run as
// BenchmarkWorkloads/grid/vm/full/failurefree, once with tracing off
// (every event site must be a predictable nop — CI holds this within a
// few percent of the plain row from the same invocation) and once with a
// live tracer attached (CI bounds the recording cost). Records land in
// BENCH_trace.json with -benchdir.

func benchTraceVariant(b *testing.B, traced bool) {
	w, err := workload.Get("grid")
	if err != nil {
		b.Fatal(err)
	}
	p, err := workload.Normalize(w, benchWorkloadParams("grid"))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Program(p)
	if err != nil {
		b.Fatal(err)
	}
	var events uint64
	var mem memProbe
	b.ReportAllocs()
	b.ResetTimer()
	mem.start()
	for i := 0; i < b.N; i++ {
		var tr *obs.Tracer
		if traced {
			tr = obs.NewTracer(0)
		}
		res, err := workload.Run(w, p, workload.RunConfig{
			Timeout: 2 * time.Minute, Program: prog, Trace: tr,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Verify(p, res.Nodes); err != nil {
			b.Fatal(err)
		}
		if traced {
			n := len(tr.Snapshot())
			if n == 0 {
				b.Fatal("tracer attached but recorded nothing")
			}
			events += uint64(n)
		}
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	if traced {
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
	recordBench(BenchRecord{
		App:         "trace",
		Name:        b.Name(),
		Engine:      "vm",
		Iterations:  b.N,
		NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp: allocs,
		BytesPerOp:  bytes,
		Nodes:       p.Nodes,
		Size:        p.Size,
		Aux:         p.Aux,
		Steps:       p.Steps,
		CkInterval:  p.CheckpointInterval,
		Workers:     p.Workers,
	})
}

func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchTraceVariant(b, false) })
	b.Run("on", func(b *testing.B) { benchTraceVariant(b, true) })
}
