package repro_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

// ---------------------------------------------------------------------------
// Per-workload benchmarks: every registered application, failure-free
// and through a one-failure fault script, each run verified bit-exactly
// against its sequential reference. With -benchdir they leave one
// BENCH_<app>.json trajectory file per app:
//
//	go test -bench Workloads -benchtime 1x -benchdir . .

// benchWorkloadParams picks a load per app that is big enough to mean
// something and small enough for a CI smoke run.
func benchWorkloadParams(name string) workload.Params {
	switch name {
	case "grid":
		return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 16, CheckpointInterval: 4, Workers: 2}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 8, Steps: 8, CheckpointInterval: 2, Workers: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 8, Steps: 6, CheckpointInterval: 2, Workers: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 4, Aux: 4, Steps: 8, CheckpointInterval: 2, Workers: 2}
	}
	return workload.Params{}
}

// benchFailure is the one-failure recovery script per app (a node with
// an early checkpoint, so the kill lands mid-run).
func benchFailure(name string) *workload.FaultScript {
	node := int64(1)
	if name == "pipeline" {
		node = 0 // the source; the middle stage is busy migrating
	}
	return workload.OneFailure(node, 1, 10*time.Millisecond)
}

func benchWorkload(b *testing.B, w workload.Workload, p workload.Params, script *workload.FaultScript) {
	p, err := workload.Normalize(w, p)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := w.Program(p)
	if err != nil {
		b.Fatal(err)
	}
	var rollbacks, ckpts, ckBytes, ckPause, recNs, recoveries uint64
	var mem memProbe
	b.ReportAllocs()
	// Collect garbage left by compilation and earlier sub-benchmarks so
	// each row starts from the same heap state; otherwise rows late in
	// the matrix pay extra scan work for their predecessors' floating
	// garbage and ns/op drifts with benchmark order.
	runtime.GC()
	b.ResetTimer()
	mem.start()
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(w, p, workload.RunConfig{
			Script: script, Timeout: 2 * time.Minute, Program: prog,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Verify(p, res.Nodes); err != nil {
			b.Fatal(err)
		}
		rollbacks += res.Rollbacks
		ckpts += res.Ckpt.Checkpoints
		ckBytes += res.Ckpt.BytesWritten
		ckPause += res.Ckpt.PauseNs
		recNs += res.Ckpt.RecoveryNs
		recoveries += res.Ckpt.Recoveries
	}
	b.StopTimer()
	allocs, bytes := mem.perOp(b.N)
	b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/op")
	eng := p.Engine
	if eng == "" {
		eng = engine.DefaultName
	}
	rec := BenchRecord{
		App:            w.Name(),
		Name:           b.Name(),
		Engine:         eng,
		Iterations:     b.N,
		NsPerOp:        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:    allocs,
		BytesPerOp:     bytes,
		RollbacksPerOp: float64(rollbacks) / float64(b.N),
		Nodes:          p.Nodes,
		Size:           p.Size,
		Aux:            p.Aux,
		Steps:          p.Steps,
		CkInterval:     p.CheckpointInterval,
		Workers:        p.Workers,
	}
	if ckpts > 0 {
		rec.CkptMode = p.Ckpt
		if rec.CkptMode == "" {
			rec.CkptMode = "full"
		}
		rec.CkptPerOp = float64(ckpts) / float64(b.N)
		rec.CkptBytesPerCkpt = float64(ckBytes) / float64(ckpts)
		rec.CkptPauseNsPerCk = float64(ckPause) / float64(ckpts)
		b.ReportMetric(rec.CkptBytesPerCkpt, "ckptB/ckpt")
		b.ReportMetric(rec.CkptPauseNsPerCk, "pause-ns/ckpt")
	}
	if recoveries > 0 {
		rec.RecoveryNsPerRest = float64(recNs) / float64(recoveries)
		b.ReportMetric(rec.RecoveryNsPerRest, "recovery-ns")
	}
	recordBench(rec)
}

func BenchmarkWorkloads(b *testing.B) {
	for _, name := range workload.Names() {
		w, err := workload.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		// Every app crossed with both execution engines and every
		// checkpoint pipeline mode, so the BENCH_<app>.json trajectories
		// record the interpreter-vs-compiled speedup next to
		// bytes-per-checkpoint and checkpoint pause for full vs delta vs
		// async.
		for _, eng := range engine.Names() {
			for _, mode := range []string{"full", "delta", "async"} {
				p := benchWorkloadParams(name)
				p.Engine = eng
				p.Ckpt = mode
				b.Run(name+"/"+eng+"/"+mode+"/failurefree", func(b *testing.B) {
					benchWorkload(b, w, p, nil)
				})
				b.Run(name+"/"+eng+"/"+mode+"/recovery", func(b *testing.B) {
					benchWorkload(b, w, p, benchFailure(name))
				})
			}
		}
	}
}
