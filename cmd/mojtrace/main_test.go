package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid
)

// TestAnalyzeFaultTrace runs a real two-failure grid run, writes its
// trace the way mojrun -trace does, and checks the analyzer
// reconstructs the cascade (fail → rolls → rollbacks → resurrect),
// the checkpoint breakdown, and nothing spurious.
func TestAnalyzeFaultTrace(t *testing.T) {
	w, err := workload.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 24, CheckpointInterval: 4}
	script := &workload.FaultScript{Events: []workload.FaultEvent{
		{Node: 1, AfterCheckpoints: 1, Delay: 20 * time.Millisecond},
		{Node: 2, AfterCheckpoints: 3, Delay: 20 * time.Millisecond},
	}}
	tr := obs.NewTracer(0)
	if _, err := workload.RunVerified(w, p, workload.RunConfig{
		Script: script, Timeout: time.Minute, Trace: tr,
	}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("mojtrace exited %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"rollback cascades: 2 failure(s)",
		"epoch 1: fail node 1",
		"epoch 2: fail node 2",
		"resurrect     node 1",
		"resurrect     node 2",
		"msg.roll",
		"spec.rollback",
		"checkpoints:",
		"capture pause:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analyzer output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "no resurrection recorded") {
		t.Errorf("cascade left open:\n%s", text)
	}
}

// TestAnalyzeStoreSection: a grid run against a gated, GC'd,
// compressed store leaves "store" stream events, and -store summarizes
// puts, gate waits and retention sweeps from them.
func TestAnalyzeStoreSection(t *testing.T) {
	w, err := workload.Get("grid")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(0)
	st, err := store.Open("zmem", store.Options{Trace: tr, GateLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 12, CheckpointInterval: 4, Ckpt: "delta", CkptK: 1}
	if _, err := workload.RunVerified(w, p, workload.RunConfig{
		Timeout: time.Minute, Trace: tr, Store: st, NoInlinePrune: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.RunGC(st, store.Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(f, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{"-store", path}, &out, &errOut); code != 0 {
		t.Fatalf("mojtrace exited %d: %s", code, errOut.String())
	}
	text := out.String()
	for _, want := range []string{
		"store:",
		"bytes at rest",
		"put latency:",
		"retention gc: 1 sweeps",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("store section missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "rollback cascades") {
		t.Errorf("-store printed other sections:\n%s", text)
	}
}

// TestAnalyzeEmptyAndMissing: empty input is not an error; a missing
// file is.
func TestAnalyzeEmptyAndMissing(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{empty}, &out, &errOut); code != 0 {
		t.Fatalf("empty trace exited %d", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "nope.jsonl")}, &out, &errOut); code != 1 {
		t.Fatalf("missing file exited %d, want 1", code)
	}
}
