// Command mojtrace analyzes event traces produced by the observability
// layer (mojrun -trace, the mojd 'D' drain RPC): it reconstructs
// rollback cascades from failure events, breaks down where checkpoint
// time went, measures migration handoff latency, and summarizes the
// serving layer's admission behavior — all from the JSONL event log, no
// live process required.
//
// Usage:
//
//	mojtrace [flags] FILE...
//
//	FILE           trace files in the JSONL format written by
//	               mojrun -trace ("-" reads stdin); multiple files are
//	               merged (e.g. a coordinator trace plus per-worker
//	               traces from a distributed run)
//	-cascades      print rollback cascade trees only
//	-ckpt          print the checkpoint breakdown only
//	-handoff       print handoff latencies only
//	-serve         print the serving-layer summary only
//	-store         print the checkpoint-store summary only (put and
//	               gate-wait latency percentiles, replication repairs,
//	               retention-GC sweeps)
//
// Without a section flag every section that has events is printed.
//
// Each cascade tree groups one failure's fallout by rollback epoch: the
// fail event, then every survivor's MSG_ROLL delivery and speculation
// rollback, then the victim's resurrection — offsets are wall-clock
// relative to the failure. Logical fields (node, epoch, step) are the
// deterministic skeleton; wall offsets are presentation only.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mojtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cascades = fs.Bool("cascades", false, "print rollback cascade trees only")
		ckpt     = fs.Bool("ckpt", false, "print the checkpoint breakdown only")
		handoff  = fs.Bool("handoff", false, "print handoff latencies only")
		serveSec = fs.Bool("serve", false, "print the serving-layer summary only")
		storeSec = fs.Bool("store", false, "print the checkpoint-store summary only")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "mojtrace: no trace files (see -h)")
		return 2
	}

	var events []obs.Event
	for _, path := range fs.Args() {
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "mojtrace: %v\n", err)
				return 1
			}
			evs, err := obs.ReadJSONL(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "mojtrace: %s: %v\n", path, err)
				return 1
			}
			events = append(events, evs...)
			continue
		}
		evs, err := obs.ReadJSONL(r)
		if err != nil {
			fmt.Fprintf(stderr, "mojtrace: stdin: %v\n", err)
			return 1
		}
		events = append(events, evs...)
	}
	if len(events) == 0 {
		fmt.Fprintln(stdout, "mojtrace: trace is empty")
		return 0
	}
	// Merged multi-file traces interleave; wall order is the one total
	// order that spans streams.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Wall < events[j].Wall })

	all := !*cascades && !*ckpt && !*handoff && !*serveSec && !*storeSec
	fmt.Fprintf(stdout, "trace: %d events, %d streams, %s span\n",
		len(events), countStreams(events), span(events).Round(time.Microsecond))
	if all || *cascades {
		printCascades(stdout, events)
	}
	if all || *ckpt {
		printCkpt(stdout, events)
	}
	if all || *handoff {
		printHandoffs(stdout, events)
	}
	if all || *serveSec {
		printServe(stdout, events)
	}
	if all || *storeSec {
		printStore(stdout, events)
	}
	return 0
}

func countStreams(events []obs.Event) int {
	seen := map[string]bool{}
	for i := range events {
		seen[events[i].Stream] = true
	}
	return len(seen)
}

func span(events []obs.Event) time.Duration {
	lo, hi := events[0].Wall, events[0].Wall
	for i := range events {
		if events[i].Wall < lo {
			lo = events[i].Wall
		}
		if events[i].Wall > hi {
			hi = events[i].Wall
		}
	}
	return time.Duration(hi - lo)
}

// cascade is one failure's reconstructed fallout, keyed by the rollback
// epoch the failure advanced the cluster to.
type cascade struct {
	epoch  uint64
	fail   *obs.Event
	rolls  []obs.Event // MSG_ROLL deliveries observed by survivors
	specRB []obs.Event // speculation rollbacks on survivors
	resur  *obs.Event
}

// buildCascades groups failure fallout by epoch: a fail event opens the
// epoch its router advance produced, survivors' msg.roll and
// spec.rollback events carry the epoch they rolled to, and the
// resurrection closes it.
func buildCascades(events []obs.Event) []*cascade {
	byEpoch := map[uint64]*cascade{}
	get := func(epoch uint64) *cascade {
		c := byEpoch[epoch]
		if c == nil {
			c = &cascade{epoch: epoch}
			byEpoch[epoch] = c
		}
		return c
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvFail.String():
			c := get(ev.Epoch)
			if c.fail == nil {
				// The engine and the hub both record the failure; keep the
				// first sighting.
				c.fail = ev
			}
		case obs.EvMsgRoll.String():
			get(ev.Epoch).rolls = append(get(ev.Epoch).rolls, *ev)
		case obs.EvSpecRollback.String():
			get(ev.Epoch).specRB = append(get(ev.Epoch).specRB, *ev)
		case obs.EvResurrect.String():
			c := get(ev.Epoch)
			if c.resur == nil {
				c.resur = ev
			}
		}
	}
	var out []*cascade
	for _, c := range byEpoch {
		if c.fail != nil {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].epoch < out[j].epoch })
	return out
}

func printCascades(w io.Writer, events []obs.Event) {
	cascades := buildCascades(events)
	if len(cascades) == 0 {
		return
	}
	fmt.Fprintf(w, "\nrollback cascades: %d failure(s)\n", len(cascades))
	for _, c := range cascades {
		t0 := c.fail.Wall
		off := func(wall int64) string {
			return "+" + time.Duration(wall-t0).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "  epoch %d: fail node %d\n", c.epoch, c.fail.Node)
		for _, ev := range c.rolls {
			fmt.Fprintf(w, "    msg.roll      node %-3d %s (%s)\n", ev.Node, off(ev.Wall), ev.Stream)
		}
		for _, ev := range c.specRB {
			fmt.Fprintf(w, "    spec.rollback node %-3d step %-6d discarded %d  %s\n",
				ev.Node, ev.Step, ev.B, off(ev.Wall))
		}
		if c.resur != nil {
			fmt.Fprintf(w, "    resurrect     node %-3d from %q recovery %s  %s\n",
				c.resur.Node, c.resur.Name,
				time.Duration(c.resur.B).Round(time.Microsecond), off(c.resur.Wall))
		} else {
			fmt.Fprintf(w, "    (no resurrection recorded)\n")
		}
	}
}

// nsStats is a tiny accumulator for duration-valued event payloads.
type nsStats struct {
	n          int
	total, max int64
}

func (s *nsStats) add(v int64) {
	s.n++
	s.total += v
	if v > s.max {
		s.max = v
	}
}

func (s nsStats) String() string {
	if s.n == 0 {
		return "none"
	}
	return fmt.Sprintf("%d × mean %s, max %s, total %s",
		s.n,
		time.Duration(s.total/int64(s.n)).Round(time.Microsecond),
		time.Duration(s.max).Round(time.Microsecond),
		time.Duration(s.total).Round(time.Microsecond))
}

func printCkpt(w io.Writer, events []obs.Event) {
	captures := map[int]*nsStats{} // node → capture pause
	var commits nsStats            // async/delta commit publish latency
	var bytes int64
	puts := 0
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvCkptCapture.String():
			s := captures[ev.Node]
			if s == nil {
				s = &nsStats{}
				captures[ev.Node] = s
			}
			s.add(ev.B)
		case obs.EvCkptPut.String():
			puts++
			bytes += ev.B
		case obs.EvCkptPublish.String():
			if ev.B > 0 {
				commits.add(ev.B)
			}
		}
	}
	if len(captures) == 0 && puts == 0 {
		return
	}
	fmt.Fprintf(w, "\ncheckpoints: %d store puts, %d bytes\n", puts, bytes)
	for _, node := range sortedKeys(captures) {
		fmt.Fprintf(w, "  node %-3d capture pause: %s\n", node, captures[node])
	}
	if commits.n > 0 {
		fmt.Fprintf(w, "  commit publish latency: %s\n", commits)
	}
}

func sortedKeys(m map[int]*nsStats) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func printHandoffs(w io.Writer, events []obs.Event) {
	type pending struct {
		ev   *obs.Event
		done bool
	}
	var handoffs []*pending
	var lines []string
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvHandoff.String():
			handoffs = append(handoffs, &pending{ev: ev})
		case obs.EvAdopt.String():
			// Pair with the earliest unmatched handoff targeting this node
			// (events are wall-sorted, so first match is the right one).
			for _, h := range handoffs {
				if !h.done && h.ev.A == int64(ev.Node) {
					h.done = true
					lines = append(lines, fmt.Sprintf("  node %d → node %d: %s",
						h.ev.Node, ev.Node,
						time.Duration(ev.Wall-h.ev.Wall).Round(time.Microsecond)))
					break
				}
			}
		}
	}
	for _, h := range handoffs {
		if !h.done {
			lines = append(lines, fmt.Sprintf("  node %d → node %d: never adopted", h.ev.Node, h.ev.A))
		}
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintf(w, "\nhandoffs: %d\n%s\n", len(lines), strings.Join(lines, "\n"))
}

// pct picks the p-th percentile from sorted samples.
func pct(sorted []int64, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return time.Duration(sorted[int(p*float64(len(sorted)-1))])
}

func printServe(w io.Writer, events []obs.Event) {
	var admits, rejects, throttled, sweeps int
	var verified, unverified int
	var waits, runs []int64
	var gcDeleted, gcFailed int64
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvServeAdmit.String():
			admits++
		case obs.EvServeReject.String():
			rejects++
			if ev.A == 1 {
				throttled++
			}
		case obs.EvServeStart.String():
			waits = append(waits, ev.A)
		case obs.EvServeVerify.String():
			if ev.A == 1 {
				verified++
			} else {
				unverified++
			}
			runs = append(runs, ev.B)
		case obs.EvServeSweep.String():
			sweeps++
			gcDeleted += ev.A
			gcFailed += ev.B
		}
	}
	if admits == 0 && rejects == 0 {
		return
	}
	fmt.Fprintf(w, "\nserving: %d admitted, %d rejected (%d throttled), %d verified, %d failed\n",
		admits, rejects, throttled, verified, unverified)
	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	if len(waits) > 0 {
		fmt.Fprintf(w, "  queue wait: p50 %s p95 %s p99 %s max %s (%d runs)\n",
			pct(waits, 0.50).Round(time.Microsecond), pct(waits, 0.95).Round(time.Microsecond),
			pct(waits, 0.99).Round(time.Microsecond), pct(waits, 1).Round(time.Microsecond), len(waits))
	}
	if len(runs) > 0 {
		fmt.Fprintf(w, "  run time:   p50 %s p95 %s p99 %s max %s\n",
			pct(runs, 0.50).Round(time.Millisecond), pct(runs, 0.95).Round(time.Millisecond),
			pct(runs, 0.99).Round(time.Millisecond), pct(runs, 1).Round(time.Millisecond))
	}
	if sweeps > 0 {
		fmt.Fprintf(w, "  gc: %d sweeps, %d objects deleted, %d failures\n", sweeps, gcDeleted, gcFailed)
	}
}

// printStore summarizes the checkpoint-store tier's "store" stream:
// put latency and bytes at the backend, storm-gate waits, replication
// read-repairs and retention-GC sweeps.
func printStore(w io.Writer, events []obs.Event) {
	var putLat, gateLat []int64
	var putBytes, repairBytes int64
	var repairs, gcRuns int
	var gcSwept, gcBytes int64
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvStorePut.String():
			putLat = append(putLat, ev.B)
			putBytes += ev.A
		case obs.EvStoreGate.String():
			gateLat = append(gateLat, ev.B)
		case obs.EvStoreRepair.String():
			repairs++
			repairBytes += ev.B
		case obs.EvStoreGC.String():
			gcRuns++
			gcSwept += ev.A
			gcBytes += ev.B
		}
	}
	if len(putLat) == 0 && len(gateLat) == 0 && repairs == 0 && gcRuns == 0 {
		return
	}
	fmt.Fprintf(w, "\nstore: %d puts, %d bytes at rest\n", len(putLat), putBytes)
	sort.Slice(putLat, func(i, j int) bool { return putLat[i] < putLat[j] })
	sort.Slice(gateLat, func(i, j int) bool { return gateLat[i] < gateLat[j] })
	if len(putLat) > 0 {
		fmt.Fprintf(w, "  put latency:  p50 %s p95 %s p99 %s max %s\n",
			pct(putLat, 0.50).Round(time.Microsecond), pct(putLat, 0.95).Round(time.Microsecond),
			pct(putLat, 0.99).Round(time.Microsecond), pct(putLat, 1).Round(time.Microsecond))
	}
	if len(gateLat) > 0 {
		// The gate only emits events for contended puts: these are the
		// waits a storm actually caused, not zero-filled noise.
		fmt.Fprintf(w, "  gate wait:    p50 %s p95 %s p99 %s max %s (%d contended puts)\n",
			pct(gateLat, 0.50).Round(time.Microsecond), pct(gateLat, 0.95).Round(time.Microsecond),
			pct(gateLat, 0.99).Round(time.Microsecond), pct(gateLat, 1).Round(time.Microsecond), len(gateLat))
	}
	if repairs > 0 {
		fmt.Fprintf(w, "  read-repair:  %d replicas repaired, %d bytes re-pushed\n", repairs, repairBytes)
	}
	if gcRuns > 0 {
		fmt.Fprintf(w, "  retention gc: %d sweeps, %d objects (%d bytes) swept\n", gcRuns, gcSwept, gcBytes)
	}
}
