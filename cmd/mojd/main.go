// Command mojd is the multi-tenant serving daemon: it accepts workload
// submissions over TCP and multiplexes many concurrent cluster runs over
// one shared bounded worker pool and one shared checkpoint store. Every
// accepted run executes to completion and is verified bit-exactly
// against its workload's sequential reference; an overloaded daemon
// refuses new submissions explicitly instead of hanging or dropping
// them. See the README's "Serving mode (mojd)" section for the protocol
// and the admission semantics.
//
// Usage:
//
//	mojd [flags]
//
//	-listen ADDR   TCP listen address (default 127.0.0.1:9444)
//	-pool N        shared worker pool: max node quanta executing at once
//	               across ALL runs (default GOMAXPROCS)
//	-maxruns N     max engines running concurrently (default 16)
//	-queue N       admission queue depth beyond the running set; a full
//	               queue rejects with an explicit throttle (default 64)
//	-run-timeout D per-run execution bound (default 2m)
//	-idle D        per-connection idle timeout (default 60s)
//	-storedir DIR  back the shared checkpoint store with a directory
//	               (sugar for -store dir:DIR; default: in-memory)
//	-store SPEC    checkpoint store backend spec: "mem", "dir:PATH",
//	               "zdir:PATH" (compression at rest), "tcp:ADDR", or
//	               "repl:N,SPEC,..." (N-way quorum replication); see
//	               internal/store
//	-storegate N   bound concurrent checkpoint Puts through a FIFO
//	               admission gate (the checkpoint-storm scheduler)
//	-storegc D     background retention GC interval over the shared
//	               store (0 = off)
//	-pprof ADDR    serve net/http/pprof on ADDR (e.g. 127.0.0.1:6060);
//	               off by default — profiling is strictly opt-in
//	-rtrace FILE   capture a runtime/trace of the daemon into FILE
//	-rtrace-window D
//	               stop the runtime/trace capture after D (default:
//	               capture until shutdown)
//	-v             log accepts, rejects and gc failures
//
// Observability RPCs ride the serving port: 'O' returns the daemon's
// metrics-registry snapshot (admission counters, per-tenant queue-wait
// and run-duration histograms) and 'D' drains the admission-lifecycle
// trace ring as JSON events (see internal/obs and cmd/mojtrace).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime/trace"
	"sync"
	"syscall"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9444", "listen address")
		pool       = flag.Int("pool", 0, "shared worker pool size (0 = GOMAXPROCS)")
		maxRuns    = flag.Int("maxruns", 16, "max concurrently executing runs")
		queue      = flag.Int("queue", 64, "admission queue depth")
		runTimeout = flag.Duration("run-timeout", 2*time.Minute, "per-run execution bound")
		idle       = flag.Duration("idle", 60*time.Second, "connection idle timeout")
		storeDir   = flag.String("storedir", "", "checkpoint store directory (sugar for -store dir:PATH)")
		storeSpec  = flag.String("store", "", `checkpoint store backend spec: "mem", "dir:PATH", "zdir:PATH", "tcp:ADDR" or "repl:N,SPEC,..."`)
		storeGate  = flag.Int("storegate", 0, "bound concurrent checkpoint Puts through a FIFO admission gate (0 = unbounded)")
		storeGC    = flag.Duration("storegc", 0, "run background retention GC over the shared store at this interval (0 = off)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (off by default)")
		rtraceFile = flag.String("rtrace", "", "capture a runtime/trace into this file")
		rtraceWin  = flag.Duration("rtrace-window", 0, "stop the runtime/trace capture after this long (0: until shutdown)")
		verbose    = flag.Bool("v", false, "log daemon events")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers via the blank import.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "mojd: pprof endpoint: %v\n", err)
			}
		}()
		fmt.Printf("mojd: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *rtraceFile != "" {
		f, err := os.Create(*rtraceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojd: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "mojd: runtime/trace: %v\n", err)
			os.Exit(1)
		}
		var once sync.Once
		stop := func() {
			once.Do(func() {
				trace.Stop()
				_ = f.Close()
			})
		}
		// Stop at the window's end if one was given, and in any case at
		// shutdown — whichever comes first.
		if *rtraceWin > 0 {
			time.AfterFunc(*rtraceWin, stop)
		}
		defer stop()
	}

	// The daemon's registry and tracer are created up front so the store
	// tier's instruments (gate wait, replication, GC) land in the same
	// snapshot the 'O' RPC serves.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)

	spec := *storeSpec
	if spec == "" && *storeDir != "" {
		spec = "dir:" + *storeDir
	}
	var st migrate.Store
	if spec != "" || *storeGate > 0 {
		var err error
		st, err = store.Open(spec, store.Options{
			Registry:  reg,
			Trace:     tracer,
			GateLimit: *storeGate,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojd: %v\n", err)
			os.Exit(1)
		}
	}
	if *storeGC > 0 {
		if st == nil {
			fmt.Fprintln(os.Stderr, "mojd: -storegc needs a shared store (-store or -storedir)")
			os.Exit(1)
		}
		gc := store.StartGC(st, *storeGC, store.Options{Registry: reg, Trace: tracer})
		defer gc.Stop()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mojd: %v\n", err)
		os.Exit(1)
	}
	cfg := serve.Config{
		PoolWorkers: *pool,
		MaxRuns:     *maxRuns,
		QueueDepth:  *queue,
		RunTimeout:  *runTimeout,
		IdleTimeout: *idle,
		Store:       st,
		Registry:    reg,
		Trace:       tracer,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mojd: "+format+"\n", args...)
		}
	}
	s := serve.NewServer(l, cfg)
	fmt.Printf("mojd: serving on %s (pool %d, maxruns %d, queue %d)\n",
		s.Addr(), cfg.PoolWorkers, cfg.MaxRuns, cfg.QueueDepth)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	closed := make(chan struct{})
	go func() {
		<-sig
		fmt.Println("mojd: shutting down")
		_ = s.Close()
		close(closed)
	}()
	if err := s.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "mojd: %v\n", err)
		os.Exit(1)
	}
	<-closed // Serve returned because Close fired; let it finish draining.
	m := s.Snapshot()
	fmt.Printf("mojd: served %d runs (%d completed, %d failed, %d rejected)\n",
		m.Accepted, m.Completed, m.Failed, m.Rejected)
}
