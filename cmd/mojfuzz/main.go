// Command mojfuzz runs the adversarial chaos fuzzer: each int64 seed
// deterministically expands into a full scenario — a registered workload
// with randomized parameters, a randomized fault script (fail, storekill,
// partition, crashresurrect), and optionally a per-link network-chaos
// profile (drop/dup/hold/reorder) — which executes against the workload's
// bit-exact sequential oracle. Failures (mismatch, hang, panic, error)
// are shrunk to a minimal repro file that mojrun -script and
// mojfuzz -replay both accept.
//
// Usage:
//
//	mojfuzz [flags]
//
//	-seeds N     number of scenarios to run (default 50)
//	-start S     first seed (default 1)
//	-seed S      replay a single seed verbosely and exit
//	-replay FILE replay one repro file and exit
//	-corpus DIR  replay every *.script repro in DIR and exit
//	-budget D    run scenarios until D elapses instead of -seeds
//	-apps LIST   comma-separated workload filter (default: all registered)
//	-engines L   comma-separated engine filter (vm,risc,jit)
//	-timeout D   per-scenario deadline (default 20s)
//	-maxfail N   stop the campaign after N failures (default 5)
//	-repro DIR   write shrunk repro files here (default .)
//	-bench FILE  write campaign throughput + coverage JSON here
//	-v           per-scenario progress
//
// Exit status: 0 when every scenario is ok or short, 1 when any scenario
// failed, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline, kvserve
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mojfuzz", flag.ContinueOnError)
	var (
		seeds   = fs.Int("seeds", 50, "number of scenarios to run")
		start   = fs.Int64("start", 1, "first seed")
		seed    = fs.Int64("seed", 0, "replay a single seed verbosely and exit")
		replay  = fs.String("replay", "", "replay one repro file and exit")
		corpus  = fs.String("corpus", "", "replay every *.script repro in this directory and exit")
		budget  = fs.Duration("budget", 0, "run until this budget elapses instead of -seeds")
		apps    = fs.String("apps", "", "comma-separated workload filter")
		engines = fs.String("engines", "", "comma-separated engine filter")
		timeout = fs.Duration("timeout", 20*time.Second, "per-scenario deadline")
		maxfail = fs.Int("maxfail", 5, "stop after this many failures")
		repro   = fs.String("repro", ".", "directory for shrunk repro files")
		bench   = fs.String("bench", "", "write campaign JSON (BENCH_chaos.json) here")
		verbose = fs.Bool("v", false, "per-scenario progress")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logf := func(string, ...any) {}
	if *verbose || *seed != 0 {
		logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	gen := chaos.GenConfig{Apps: splitList(*apps), Engines: splitList(*engines)}
	reg := obs.NewRegistry()
	exec := chaos.ExecConfig{Timeout: *timeout, Metrics: reg, Logf: logf}

	switch {
	case *replay != "":
		s, err := chaos.LoadRepro(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mojfuzz:", err)
			return 2
		}
		return reportOne(*replay, s, exec)

	case *corpus != "":
		reports, err := chaos.ReplayCorpus(*corpus, exec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mojfuzz:", err)
			return 2
		}
		if len(reports) == 0 {
			fmt.Fprintf(os.Stderr, "mojfuzz: no *.script repros in %s\n", *corpus)
			return 2
		}
		bad := 0
		for path, rep := range reports {
			status := rep.Outcome.String()
			if rep.Outcome.Failed() {
				bad++
				fmt.Printf("FAIL %-40s %s: %v\n", path, status, rep.Err)
			} else {
				fmt.Printf("ok   %-40s %s (%.2fs)\n", path, status, rep.Elapsed.Seconds())
			}
		}
		if bad > 0 {
			fmt.Printf("%d/%d corpus repros failed\n", bad, len(reports))
			return 1
		}
		fmt.Printf("%d corpus repros clean\n", len(reports))
		return 0

	case *seed != 0:
		s, err := chaos.Generate(*seed, gen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mojfuzz:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "scenario: %s\n", s)
		fmt.Fprint(os.Stderr, chaos.FormatRepro(s))
		return reportOne(fmt.Sprintf("seed %d", *seed), s, exec)
	}

	res, err := chaos.Fuzz(chaos.FuzzConfig{
		Seeds:       *seeds,
		StartSeed:   *start,
		Budget:      *budget,
		Gen:         gen,
		Exec:        exec,
		MaxFailures: *maxfail,
		ReproDir:    *repro,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mojfuzz:", err)
		return 2
	}
	fmt.Printf("mojfuzz: %d scenarios in %.1fs (%.2f/s): %d ok, %d short, %d failed\n",
		res.Scenarios, res.Elapsed.Seconds(),
		float64(res.Scenarios)/res.Elapsed.Seconds(),
		res.OK, res.Short, len(res.Failures))
	for _, f := range res.Failures {
		fmt.Printf("  seed %d: %s: %v\n", f.Seed, f.Outcome, f.Err)
		if f.ReproPath != "" {
			fmt.Printf("    repro: %s  (replay: mojfuzz -replay %s)\n", f.ReproPath, f.ReproPath)
		}
	}
	if *bench != "" {
		if err := chaos.WriteBenchFile(*bench, res, reg); err != nil {
			fmt.Fprintln(os.Stderr, "mojfuzz: writing bench:", err)
			return 2
		}
	}
	if len(res.Failures) > 0 {
		return 1
	}
	return 0
}

func reportOne(label string, s *chaos.Scenario, exec chaos.ExecConfig) int {
	rep := chaos.Replay(s, exec)
	if rep.Outcome.Failed() {
		fmt.Printf("FAIL %s: %s: %v\n", label, rep.Outcome, rep.Err)
		return 1
	}
	fmt.Printf("ok   %s: %s (%.2fs)\n", label, rep.Outcome, rep.Elapsed.Seconds())
	return 0
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
