package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCampaignSmoke runs a tiny real campaign end to end: scenarios
// execute, the bench JSON lands with coverage counters, and the exit
// status reflects a clean run.
func TestCampaignSmoke(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_chaos.json")
	code := run([]string{"-seeds", "4", "-timeout", "30s", "-repro", dir, "-bench", bench})
	if code != 0 {
		t.Fatalf("campaign exit %d, want 0", code)
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bench JSON: %v\n%s", err, data)
	}
	if doc["scenarios"].(float64) != 4 {
		t.Fatalf("bench scenarios = %v, want 4", doc["scenarios"])
	}
	if _, ok := doc["coverage"].(map[string]any); !ok {
		t.Fatalf("bench missing coverage counters:\n%s", data)
	}
}

// TestSeedReplay: -seed replays one scenario deterministically.
func TestSeedReplay(t *testing.T) {
	if code := run([]string{"-seed", "5", "-timeout", "30s"}); code != 0 {
		t.Fatalf("seed replay exit %d, want 0", code)
	}
}

// TestCorpusReplay: -corpus replays the committed regression corpus.
func TestCorpusReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the full corpus")
	}
	corpus := filepath.Join("..", "..", "internal", "chaos", "corpus")
	if code := run([]string{"-corpus", corpus, "-timeout", "45s"}); code != 0 {
		t.Fatalf("corpus replay exit %d, want 0", code)
	}
}

// TestUsageErrors: bad flags and missing inputs exit 2, not 0/1.
func TestUsageErrors(t *testing.T) {
	if code := run([]string{"-nosuchflag"}); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.script")}); code != 2 {
		t.Fatalf("missing repro exit %d, want 2", code)
	}
	if code := run([]string{"-corpus", t.TempDir()}); code != 2 {
		t.Fatalf("empty corpus exit %d, want 2", code)
	}
}
