// Command mojload is the serving-mode load generator: it drives a mojd
// daemon with hundreds of concurrent workload submissions — across every
// registered app and both execution engines — measures sustained
// jobs/sec, and writes a BENCH_serve.json record including the daemon's
// own per-tenant metrics.
//
// Throttled submissions (the daemon's explicit admission refusals) are
// retried with backoff and counted; anything else failing is an error.
// Every completed run was verified bit-exactly by the daemon against the
// workload's sequential reference, so a clean mojload exit is also a
// correctness statement about everything it submitted.
//
// Usage:
//
//	mojload [flags]
//
//	-addr ADDR     daemon address; with -selfhost, an in-process daemon
//	               is started instead and ADDR is ignored
//	-selfhost      run an in-process daemon (for CI and benchmarks)
//	-jobs N        total submissions (default 200)
//	-concurrency C in-flight submissions (default 32)
//	-tenants T     distinct tenants to spread the jobs over (default 8)
//	-apps LIST     comma-separated workloads (default all registered)
//	-engines LIST  comma-separated engines (default "vm,risc")
//	-script S      fault script (mojrun -script syntax, semicolons for
//	               newlines) attached to tenant t0's submissions
//	-retries N     max throttle retries per job (default 50)
//	-out FILE      write the benchmark record here (default
//	               BENCH_serve.json; "-" for stdout only)
//	-trace FILE    drain the daemon's event trace after the load and
//	               write it as JSONL (cmd/mojtrace's input)
//	-obs FILE      fetch the daemon's metrics-registry snapshot after
//	               the load and write it as JSON
//	-pool/-maxruns/-queue  daemon sizing with -selfhost
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

// smallParams is the per-app shrunk problem shape the generator submits:
// big enough to checkpoint and roll back, small enough to sustain
// hundreds of runs.
func smallParams(app string) workload.Params {
	switch app {
	case "grid":
		return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 12, CheckpointInterval: 4}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 4, Steps: 8, CheckpointInterval: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 4, Steps: 6, CheckpointInterval: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 8, CheckpointInterval: 2}
	}
	return workload.Params{}
}

// latQuantiles summarizes one client-side latency distribution (ns).
type latQuantiles struct {
	Count int   `json:"count"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// quantiles computes the summary from raw samples (sorts its argument).
func quantiles(ns []int64) latQuantiles {
	q := latQuantiles{Count: len(ns)}
	if len(ns) == 0 {
		return q
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	at := func(p float64) int64 { return ns[int(p*float64(len(ns)-1))] }
	q.P50, q.P95, q.P99, q.Max = at(0.50), at(0.95), at(0.99), ns[len(ns)-1]
	return q
}

// benchRecord is the BENCH_serve.json schema. v2 added the client-side
// latency quantiles (end-to-end submit round trip and the daemon-reported
// admission-queue wait); everything v1 carried is unchanged.
type benchRecord struct {
	Schema      string         `json:"schema"`
	Jobs        int            `json:"jobs"`
	Completed   int64          `json:"completed"`
	Failed      int64          `json:"failed"`
	Throttles   int64          `json:"throttles"`
	Concurrency int            `json:"concurrency"`
	Tenants     int            `json:"tenants"`
	Apps        []string       `json:"apps"`
	Engines     []string       `json:"engines"`
	ElapsedNs   int64          `json:"elapsed_ns"`
	JobsPerSec  float64        `json:"jobs_per_sec"`
	E2ELatency  latQuantiles   `json:"e2e_latency"`
	QueueWait   latQuantiles   `json:"queue_wait"`
	Server      *serve.Metrics `json:"server_metrics,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9444", "daemon address")
		selfhost    = flag.Bool("selfhost", false, "start an in-process daemon")
		jobs        = flag.Int("jobs", 200, "total submissions")
		concurrency = flag.Int("concurrency", 32, "in-flight submissions")
		tenants     = flag.Int("tenants", 8, "distinct tenants")
		appsFlag    = flag.String("apps", "", "comma-separated workloads (default: all registered)")
		engines     = flag.String("engines", "vm,risc", "comma-separated engines")
		script      = flag.String("script", "", "fault script for tenant t0 (semicolons for newlines)")
		retries     = flag.Int("retries", 50, "max throttle retries per job")
		out         = flag.String("out", "BENCH_serve.json", `output file ("-" for stdout only)`)
		traceOut    = flag.String("trace", "", "drain the daemon's trace into this JSONL file")
		obsOut      = flag.String("obs", "", "write the daemon's metrics-registry snapshot into this JSON file")
		pool        = flag.Int("pool", 0, "daemon pool size with -selfhost (0 = GOMAXPROCS)")
		maxRuns     = flag.Int("maxruns", 16, "daemon maxruns with -selfhost")
		queue       = flag.Int("queue", 64, "daemon queue depth with -selfhost")
	)
	flag.Parse()
	if code := run(*addr, *selfhost, *jobs, *concurrency, *tenants, *appsFlag, *engines,
		*script, *retries, *out, *traceOut, *obsOut, *pool, *maxRuns, *queue); code != 0 {
		os.Exit(code)
	}
}

func run(addr string, selfhost bool, jobs, concurrency, tenants int, appsFlag, enginesFlag,
	script string, retries int, out, traceOut, obsOut string, pool, maxRuns, queue int) int {
	apps := workload.Names()
	if appsFlag != "" {
		apps = strings.Split(appsFlag, ",")
	}
	engines := strings.Split(enginesFlag, ",")
	for _, app := range apps {
		if _, err := workload.Get(app); err != nil {
			fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
			return 1
		}
	}
	script = strings.ReplaceAll(script, ";", "\n")

	if selfhost {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
			return 1
		}
		s := serve.NewServer(l, serve.Config{PoolWorkers: pool, MaxRuns: maxRuns, QueueDepth: queue})
		go func() { _ = s.Serve() }()
		defer s.Close()
		addr = s.Addr()
		fmt.Printf("mojload: self-hosted daemon on %s\n", addr)
	}
	client := &serve.Client{Addr: addr, SubmitTimeout: 5 * time.Minute}

	var completed, failed, throttles int64
	var firstErr atomic.Value
	var latMu sync.Mutex
	var e2eNs, queueNs []int64
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(worker)))
			for idx := range work {
				req := serve.SubmitRequest{
					Tenant: fmt.Sprintf("t%d", idx%tenants),
					App:    apps[idx%len(apps)],
					Params: smallParams(apps[idx%len(apps)]),
				}
				req.Params.Engine = engines[(idx/len(apps))%len(engines)]
				if script != "" && idx%tenants == 0 {
					req.Script = script
				}
				jobStart := time.Now()
				reply, err := submitWithRetry(client, req, retries, rnd, &throttles)
				if err != nil {
					atomic.AddInt64(&failed, 1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				atomic.AddInt64(&completed, 1)
				latMu.Lock()
				e2eNs = append(e2eNs, time.Since(jobStart).Nanoseconds())
				queueNs = append(queueNs, reply.QueueWaitNs)
				latMu.Unlock()
			}
		}(i)
	}
	for idx := 0; idx < jobs; idx++ {
		work <- idx
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	rec := benchRecord{
		Schema:      "mojd-load/v2",
		Jobs:        jobs,
		Completed:   completed,
		Failed:      failed,
		Throttles:   throttles,
		Concurrency: concurrency,
		Tenants:     tenants,
		Apps:        apps,
		Engines:     engines,
		ElapsedNs:   elapsed.Nanoseconds(),
		JobsPerSec:  float64(completed) / elapsed.Seconds(),
		E2ELatency:  quantiles(e2eNs),
		QueueWait:   quantiles(queueNs),
	}
	if m, err := client.Metrics(); err == nil {
		rec.Server = m
	} else {
		fmt.Fprintf(os.Stderr, "mojload: fetching server metrics: %v\n", err)
	}
	if traceOut != "" {
		events, err := client.TraceDrain()
		if err == nil {
			var f *os.File
			if f, err = os.Create(traceOut); err == nil {
				err = obs.WriteJSONL(f, events)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojload: draining daemon trace: %v\n", err)
			return 1
		}
		fmt.Printf("mojload: drained %d trace events into %s\n", len(events), traceOut)
	}
	if obsOut != "" {
		snap, err := client.ObsSnapshot()
		if err == nil {
			var data []byte
			if data, err = json.MarshalIndent(snap, "", "  "); err == nil {
				err = os.WriteFile(obsOut, append(data, '\n'), 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojload: fetching registry snapshot: %v\n", err)
			return 1
		}
	}

	fmt.Printf("mojload: %d jobs in %s (%.1f jobs/sec), %d throttle retries, %d failed\n",
		rec.Completed, elapsed.Round(time.Millisecond), rec.JobsPerSec, rec.Throttles, rec.Failed)
	fmt.Printf("mojload: e2e latency p50 %s p95 %s p99 %s, queue wait p50 %s p95 %s p99 %s\n",
		time.Duration(rec.E2ELatency.P50).Round(time.Microsecond),
		time.Duration(rec.E2ELatency.P95).Round(time.Microsecond),
		time.Duration(rec.E2ELatency.P99).Round(time.Microsecond),
		time.Duration(rec.QueueWait.P50).Round(time.Microsecond),
		time.Duration(rec.QueueWait.P95).Round(time.Microsecond),
		time.Duration(rec.QueueWait.P99).Round(time.Microsecond))
	if rec.Server != nil {
		fmt.Printf("mojload: server: accepted %d, rejected %d, rollbacks %d, ckpt bytes %d, gc %d objects (%d failures)\n",
			rec.Server.Accepted, rec.Server.Rejected, rec.Server.Rollbacks,
			rec.Server.CkptBytes, rec.Server.GCObjects, rec.Server.GCFailures)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
		return 1
	}
	if out == "-" {
		fmt.Println(string(data))
	} else if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
		return 1
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mojload: %d jobs failed; first: %v\n", failed, firstErr.Load())
		return 1
	}
	return 0
}

// submitWithRetry retries explicit throttles with jittered backoff —
// the daemon's admission control is the backpressure signal — and
// returns any other failure as final.
func submitWithRetry(c *serve.Client, req serve.SubmitRequest, retries int,
	rnd *rand.Rand, throttles *int64) (*serve.RunReply, error) {
	for attempt := 0; ; attempt++ {
		reply, err := c.Submit(req)
		if err == nil {
			return reply, nil
		}
		if !errors.Is(err, serve.ErrThrottled) || attempt >= retries {
			return nil, err
		}
		atomic.AddInt64(throttles, 1)
		window := 5 * time.Millisecond << uint(min(attempt, 6))
		time.Sleep(time.Duration(rnd.Int63n(int64(window))))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
