// Command mojload is the serving-mode load generator: it drives a mojd
// daemon with hundreds of concurrent workload submissions — across every
// registered app and both execution engines — measures sustained
// jobs/sec, and writes a BENCH_serve.json record including the daemon's
// own per-tenant metrics.
//
// Throttled submissions (the daemon's explicit admission refusals) are
// retried with backoff and counted; anything else failing is an error.
// Every completed run was verified bit-exactly by the daemon against the
// workload's sequential reference, so a clean mojload exit is also a
// correctness statement about everything it submitted.
//
// Usage:
//
//	mojload [flags]
//
//	-addr ADDR     daemon address; with -selfhost, an in-process daemon
//	               is started instead and ADDR is ignored
//	-selfhost      run an in-process daemon (for CI and benchmarks)
//	-jobs N        total submissions (default 200)
//	-concurrency C in-flight submissions (default 32)
//	-tenants T     distinct tenants to spread the jobs over (default 8)
//	-apps LIST     comma-separated workloads (default all registered)
//	-engines LIST  comma-separated engines (default "vm,risc")
//	-script S      fault script (mojrun -script syntax, semicolons for
//	               newlines) attached to tenant t0's submissions
//	-retries N     max throttle retries per job (default 50)
//	-out FILE      write the benchmark record here (default
//	               BENCH_serve.json; "-" for stdout only)
//	-pool/-maxruns/-queue  daemon sizing with -selfhost
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

// smallParams is the per-app shrunk problem shape the generator submits:
// big enough to checkpoint and roll back, small enough to sustain
// hundreds of runs.
func smallParams(app string) workload.Params {
	switch app {
	case "grid":
		return workload.Params{Nodes: 3, Size: 4, Aux: 8, Steps: 12, CheckpointInterval: 4}
	case "allreduce":
		return workload.Params{Nodes: 3, Size: 4, Steps: 8, CheckpointInterval: 2}
	case "taskfarm":
		return workload.Params{Nodes: 3, Size: 4, Steps: 6, CheckpointInterval: 2}
	case "pipeline":
		return workload.Params{Nodes: 4, Size: 3, Aux: 4, Steps: 8, CheckpointInterval: 2}
	}
	return workload.Params{}
}

// benchRecord is the BENCH_serve.json schema.
type benchRecord struct {
	Schema      string         `json:"schema"`
	Jobs        int            `json:"jobs"`
	Completed   int64          `json:"completed"`
	Failed      int64          `json:"failed"`
	Throttles   int64          `json:"throttles"`
	Concurrency int            `json:"concurrency"`
	Tenants     int            `json:"tenants"`
	Apps        []string       `json:"apps"`
	Engines     []string       `json:"engines"`
	ElapsedNs   int64          `json:"elapsed_ns"`
	JobsPerSec  float64        `json:"jobs_per_sec"`
	Server      *serve.Metrics `json:"server_metrics,omitempty"`
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9444", "daemon address")
		selfhost    = flag.Bool("selfhost", false, "start an in-process daemon")
		jobs        = flag.Int("jobs", 200, "total submissions")
		concurrency = flag.Int("concurrency", 32, "in-flight submissions")
		tenants     = flag.Int("tenants", 8, "distinct tenants")
		appsFlag    = flag.String("apps", "", "comma-separated workloads (default: all registered)")
		engines     = flag.String("engines", "vm,risc", "comma-separated engines")
		script      = flag.String("script", "", "fault script for tenant t0 (semicolons for newlines)")
		retries     = flag.Int("retries", 50, "max throttle retries per job")
		out         = flag.String("out", "BENCH_serve.json", `output file ("-" for stdout only)`)
		pool        = flag.Int("pool", 0, "daemon pool size with -selfhost (0 = GOMAXPROCS)")
		maxRuns     = flag.Int("maxruns", 16, "daemon maxruns with -selfhost")
		queue       = flag.Int("queue", 64, "daemon queue depth with -selfhost")
	)
	flag.Parse()
	if code := run(*addr, *selfhost, *jobs, *concurrency, *tenants, *appsFlag, *engines,
		*script, *retries, *out, *pool, *maxRuns, *queue); code != 0 {
		os.Exit(code)
	}
}

func run(addr string, selfhost bool, jobs, concurrency, tenants int, appsFlag, enginesFlag,
	script string, retries int, out string, pool, maxRuns, queue int) int {
	apps := workload.Names()
	if appsFlag != "" {
		apps = strings.Split(appsFlag, ",")
	}
	engines := strings.Split(enginesFlag, ",")
	for _, app := range apps {
		if _, err := workload.Get(app); err != nil {
			fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
			return 1
		}
	}
	script = strings.ReplaceAll(script, ";", "\n")

	if selfhost {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
			return 1
		}
		s := serve.NewServer(l, serve.Config{PoolWorkers: pool, MaxRuns: maxRuns, QueueDepth: queue})
		go func() { _ = s.Serve() }()
		defer s.Close()
		addr = s.Addr()
		fmt.Printf("mojload: self-hosted daemon on %s\n", addr)
	}
	client := &serve.Client{Addr: addr, SubmitTimeout: 5 * time.Minute}

	var completed, failed, throttles int64
	var firstErr atomic.Value
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(worker)))
			for idx := range work {
				req := serve.SubmitRequest{
					Tenant: fmt.Sprintf("t%d", idx%tenants),
					App:    apps[idx%len(apps)],
					Params: smallParams(apps[idx%len(apps)]),
				}
				req.Params.Engine = engines[(idx/len(apps))%len(engines)]
				if script != "" && idx%tenants == 0 {
					req.Script = script
				}
				err := submitWithRetry(client, req, retries, rnd, &throttles)
				if err != nil {
					atomic.AddInt64(&failed, 1)
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				atomic.AddInt64(&completed, 1)
			}
		}(i)
	}
	for idx := 0; idx < jobs; idx++ {
		work <- idx
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	rec := benchRecord{
		Schema:      "mojd-load/v1",
		Jobs:        jobs,
		Completed:   completed,
		Failed:      failed,
		Throttles:   throttles,
		Concurrency: concurrency,
		Tenants:     tenants,
		Apps:        apps,
		Engines:     engines,
		ElapsedNs:   elapsed.Nanoseconds(),
		JobsPerSec:  float64(completed) / elapsed.Seconds(),
	}
	if m, err := client.Metrics(); err == nil {
		rec.Server = m
	} else {
		fmt.Fprintf(os.Stderr, "mojload: fetching server metrics: %v\n", err)
	}

	fmt.Printf("mojload: %d jobs in %s (%.1f jobs/sec), %d throttle retries, %d failed\n",
		rec.Completed, elapsed.Round(time.Millisecond), rec.JobsPerSec, rec.Throttles, rec.Failed)
	if rec.Server != nil {
		fmt.Printf("mojload: server: accepted %d, rejected %d, rollbacks %d, ckpt bytes %d, gc %d objects (%d failures)\n",
			rec.Server.Accepted, rec.Server.Rejected, rec.Server.Rollbacks,
			rec.Server.CkptBytes, rec.Server.GCObjects, rec.Server.GCFailures)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
		return 1
	}
	if out == "-" {
		fmt.Println(string(data))
	} else if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mojload: %v\n", err)
		return 1
	}

	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mojload: %d jobs failed; first: %v\n", failed, firstErr.Load())
		return 1
	}
	return 0
}

// submitWithRetry retries explicit throttles with jittered backoff —
// the daemon's admission control is the backpressure signal — and
// returns any other failure as final.
func submitWithRetry(c *serve.Client, req serve.SubmitRequest, retries int,
	rnd *rand.Rand, throttles *int64) error {
	for attempt := 0; ; attempt++ {
		_, err := c.Submit(req)
		if err == nil {
			return nil
		}
		if !errors.Is(err, serve.ErrThrottled) || attempt >= retries {
			return err
		}
		atomic.AddInt64(throttles, 1)
		window := 5 * time.Millisecond << uint(min(attempt, 6))
		time.Sleep(time.Duration(rnd.Int63n(int64(window))))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
