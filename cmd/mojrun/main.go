// Command mojrun executes any registered workload (grid, allreduce,
// taskfarm, pipeline, …) on the simulated in-process cluster or
// distributed across OS processes over the TCP cluster transport,
// optionally driving it through a declarative fault script, and verifies
// the result bit-exactly against the workload's sequential reference.
//
// Usage:
//
//	mojrun [flags]
//
//	-app NAME    workload to run (default grid; see -list)
//	-list        list registered workloads and their defaults
//	-nodes N     cluster nodes (0 = workload default)
//	-size N      per-node problem size (0 = workload default)
//	-aux N       workload-specific knob (grid: columns; pipeline:
//	             migration batch; 0 = workload default)
//	-rows/-cols  grid-compatible aliases for -size/-aux
//	-steps N     timesteps / rounds / batches (0 = workload default)
//	-ck N        checkpoint interval (0 = workload default)
//	-workers N   concurrently executing node quanta (0 = unbounded)
//	-engine E    execution engine: "vm" (slot-resolved interpreter,
//	             default) or "risc" (compiled RISC simulator); results
//	             are bit-identical on either
//	-ckpt MODE   checkpoint pipeline: full (default), delta, async
//	-ckptk K     force a full image every K delta checkpoints
//	-fail SPEC   inject a failure: "node@checkpoints[@delay]", e.g.
//	             "1@2", "0@4@50ms" or "2@1@ck:2" (resurrect after 2 more
//	             store writes); repeatable — events fire in order
//	-script FILE fault-scenario script (fail, storekill, partition and
//	             crashresurrect lines; see README cookbook)
//	-timeout D   run timeout (default 2m)
//	-v           print per-node halt codes
//
// Distributed mode (same flags as gridrun):
//
//	-distributed, -coordinator, -listen, -storedir, -join, -node, -resume
//
// A worker ordered to die by the coordinator's fault injection exits
// with code 3 (simulated crash, not an error).
package main

import (
	"os"

	"repro/internal/workload/cli"

	_ "repro/internal/workload/apps" // register grid, allreduce, taskfarm, pipeline
)

func main() {
	os.Exit(cli.Main(os.Args[1:], "mojrun", "grid", os.Stdout, os.Stderr))
}
