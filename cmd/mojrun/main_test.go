package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMojrun compiles this command once per test binary so the
// integration tests below exercise real, separate OS processes.
var mojrunBin struct {
	path string
	err  error
}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mojrun-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	mojrunBin.path = filepath.Join(dir, "mojrun")
	out, err := exec.Command("go", "build", "-o", mojrunBin.path, ".").CombinedOutput()
	if err != nil {
		mojrunBin.err = fmt.Errorf("building mojrun: %v\n%s", err, out)
	}
	os.Exit(m.Run())
}

func bin(t *testing.T) string {
	t.Helper()
	if mojrunBin.err != nil {
		t.Fatal(mojrunBin.err)
	}
	return mojrunBin.path
}

// TestList: -list names every shipped workload.
func TestList(t *testing.T) {
	out, err := exec.Command(bin(t), "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("mojrun -list: %v\n%s", err, out)
	}
	for _, app := range []string{"grid", "allreduce", "taskfarm", "pipeline"} {
		if !strings.Contains(string(out), app) {
			t.Errorf("-list output lacks %q:\n%s", app, out)
		}
	}
}

// TestRepeatableFailInProcess: two -fail events in one in-process run,
// verified bit-exactly.
func TestRepeatableFailInProcess(t *testing.T) {
	out, err := exec.Command(bin(t), "-app", "taskfarm",
		"-fail", "1@1", "-fail", "0@2", "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("mojrun -app taskfarm -fail -fail: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("resurrections 2")) {
		t.Fatalf("no double resurrection recorded:\n%s", out)
	}
	if !bytes.Contains(out, []byte("matches the sequential reference exactly")) {
		t.Fatalf("no exact-match verdict:\n%s", out)
	}
}

// TestScriptFile: the same scenario via a -script file.
func TestScriptFile(t *testing.T) {
	script := filepath.Join(t.TempDir(), "faults.txt")
	if err := os.WriteFile(script, []byte("# two sequential failures\nfail 2@1\nfail 1@2 delay=10ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin(t), "-app", "allreduce", "-script", script).CombinedOutput()
	if err != nil {
		t.Fatalf("mojrun -script: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("resurrections 2")) {
		t.Fatalf("script events did not all fire:\n%s", out)
	}
	if !bytes.Contains(out, []byte("matches the sequential reference exactly")) {
		t.Fatalf("no exact-match verdict:\n%s", out)
	}
}

// TestBadFailSpecIsAnError: a malformed -fail reports a parse error
// (exit 2 from flag parsing) instead of dying mid-run.
func TestBadFailSpecIsAnError(t *testing.T) {
	for _, spec := range []string{"x@2", "1", "1@2@zz"} {
		out, err := exec.Command(bin(t), "-app", "grid", "-fail", spec).CombinedOutput()
		if err == nil {
			t.Errorf("-fail %q accepted:\n%s", spec, out)
		}
		if !bytes.Contains(out, []byte("bad fail spec")) {
			t.Errorf("-fail %q: no parse diagnostic:\n%s", spec, out)
		}
	}
}

// TestDistributedSubprocessPipeline: the pipeline across real OS worker
// processes — including the spare worker that adopts the migrating
// stage through the hub — with one injected failure after the handoff.
func TestDistributedSubprocessPipeline(t *testing.T) {
	storeDir := t.TempDir()
	out, err := exec.Command(bin(t), "-app", "pipeline", "-distributed",
		"-fail", "3@1", "-storedir", storeDir, "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("mojrun -app pipeline -distributed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("matches the sequential reference exactly")) {
		t.Fatalf("no exact-match verdict:\n%s", out)
	}
	if !bytes.Contains(out, []byte("resurrections 1")) {
		t.Fatalf("no resurrection recorded:\n%s", out)
	}
	ents, err := os.ReadDir(storeDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("shared store dir empty (%v); checkpoints never hit the mount", err)
	}
}
