// Command mccd is the MCC migration daemon: "a version of the compiler
// that will listen for incoming migration requests, recompile any inbound
// processes on the new machine, and reconstruct their state before
// executing them" (§4.2.1).
//
// Usage:
//
//	mccd [flags]
//
//	-listen ADDR    TCP listen address (default 127.0.0.1:9333)
//	-backend NAME   vm or risc runtime for resumed processes
//	-trust          accept the trusted binary protocol (skips verification)
//	-store DIR      checkpoint directory for onward migrations
//	-fuel N         step budget per resumed process
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/migrate"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9333", "listen address")
		backend = flag.String("backend", "vm", "runtime backend: vm or risc")
		trust   = flag.Bool("trust", false, "allow the trusted binary protocol")
		store   = flag.String("store", "", "checkpoint directory for onward migrations")
		fuel    = flag.Uint64("fuel", 0, "step budget per resumed process")
	)
	flag.Parse()

	var be migrate.Backend
	switch strings.ToLower(*backend) {
	case "vm":
		be = migrate.BackendVM
	case "risc":
		be = migrate.BackendRISC
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	mig := &migrate.Migrator{}
	if *store != "" {
		ds, err := cluster.NewDirStore(*store)
		if err != nil {
			fatal(err)
		}
		mig.Store = ds
	} else {
		mig.Store = cluster.NewMemStore()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := migrate.NewServer(l, migrate.ServerConfig{
		Backend:     be,
		AllowBinary: *trust,
		Migrator:    mig,
		Config:      migrate.ProcessConfig{Stdout: os.Stdout, Fuel: *fuel},
	})
	fmt.Fprintf(os.Stderr, "mccd: listening on %s (backend=%s, binary=%v)\n", srv.Addr(), *backend, *trust)
	if err := srv.Serve(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mccd:", err)
	os.Exit(1)
}
