// Command mcc is the Mojave compiler driver: it compiles MojC source to
// FIR, optionally emits the FIR or RISC assembly, and runs the program on
// either runtime backend.
//
// Usage:
//
//	mcc [flags] file.mc
//
//	-run            execute after compiling (default true)
//	-backend NAME   vm (interpreter) or risc (machine simulator)
//	-emit KIND      also print "fir" or "asm"
//	-arg N          append a process argument (repeatable)
//	-fuel N         step budget (0 = unlimited)
//	-trap           roll back the innermost speculation on runtime errors
//	-store DIR      directory for checkpoint:// and suspend:// targets
//	-O              run the FIR optimizer
//	-lang NAME      source language: mojc (default) or pascal
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fir"
	"repro/internal/risc"
	"repro/internal/rt"
)

type intList []int64

func (l *intList) String() string { return fmt.Sprint(*l) }
func (l *intList) Set(s string) error {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var (
		run     = flag.Bool("run", true, "execute the program after compiling")
		backend = flag.String("backend", "vm", "runtime backend: vm or risc")
		emit    = flag.String("emit", "", "print intermediate form: fir or asm")
		fuel    = flag.Uint64("fuel", 0, "step budget (0 = unlimited)")
		trap    = flag.Bool("trap", false, "auto-rollback speculations on runtime errors")
		store   = flag.String("store", "", "checkpoint directory for migrate()/checkpoint:// targets")
		optim   = flag.Bool("O", false, "run the FIR optimizer")
		langSel = flag.String("lang", "", "source language: mojc or pascal (default: by extension, .pas = pascal)")
		args    intList
	)
	flag.Var(&args, "arg", "process argument (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [flags] file.mc")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	language := *langSel
	if language == "" {
		if strings.HasSuffix(flag.Arg(0), ".pas") {
			language = "pascal"
		} else {
			language = "mojc"
		}
	}
	var prog *core.Program
	switch language {
	case "pascal":
		prog, err = core.CompilePascal(string(src), nil)
	case "mojc", "c":
		prog, err = core.Compile(string(src), nil)
	default:
		err = fmt.Errorf("unknown language %q", language)
	}
	if err != nil {
		fatal(err)
	}
	if *optim {
		st := prog.Optimize()
		fmt.Fprintf(os.Stderr, "mcc: optimizer folded %d, propagated %d, removed %d dead, folded %d branches\n",
			st.Folded, st.CopiesProp, st.DeadLets, st.IfsFolded)
	}

	switch *emit {
	case "":
	case "fir":
		fmt.Print(fir.Format(prog.FIR))
	case "asm":
		mod, err := risc.Compile(prog.FIR)
		if err != nil {
			fatal(err)
		}
		fmt.Print(mod.Disassemble())
	default:
		fatal(fmt.Errorf("unknown -emit kind %q", *emit))
	}
	if !*run {
		return
	}

	var be core.Backend
	switch strings.ToLower(*backend) {
	case "vm":
		be = core.BackendVM
	case "risc":
		be = core.BackendRISC
	default:
		fatal(fmt.Errorf("unknown backend %q", *backend))
	}

	p, err := core.NewProcess(prog, core.ProcessConfig{
		Backend: be, Stdout: os.Stdout, Fuel: *fuel,
		Args: args, TrapSpeculation: *trap, Name: flag.Arg(0),
	})
	if err != nil {
		fatal(err)
	}
	if *store != "" {
		ds, err := cluster.NewDirStore(*store)
		if err != nil {
			fatal(err)
		}
		p.UseMigrator(ds, nil)
	} else {
		p.UseMigrator(cluster.NewMemStore(), nil)
	}
	if err := p.Start(); err != nil {
		fatal(err)
	}
	st, err := p.Run()
	switch st {
	case rt.StatusHalted:
		os.Exit(int(p.HaltCode() & 0x7f))
	case rt.StatusMigrated:
		fmt.Fprintln(os.Stderr, "mcc: process migrated away")
	case rt.StatusSuspended:
		fmt.Fprintln(os.Stderr, "mcc: process suspended to checkpoint storage")
	default:
		fatal(fmt.Errorf("process %s: %v", st, err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcc:", err)
	os.Exit(1)
}
