// Command mojstored serves a checkpoint store over TCP: the endpoint a
// "tcp:ADDR" store spec (or one arm of a "repl:N,tcp:...,tcp:..."
// quorum) points at. Run one per storage machine to spread a replicated
// checkpoint store across hosts.
//
// Usage:
//
//	mojstored [flags]
//
//	-listen ADDR   TCP listen address (default 127.0.0.1:9445)
//	-store SPEC    backing store spec: "mem", "dir:PATH" or
//	               "zdir:PATH" (compression at rest); see
//	               internal/store (default mem)
//	-storedir DIR  sugar for -store dir:DIR
//	-storegc D     background retention GC interval (0 = off). Only
//	               enable on the replica that owns cleanup: a GC that
//	               sees one arm of a quorum would sweep chains whose
//	               heads live elsewhere.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/store"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9445", "listen address")
		storeSpec = flag.String("store", "", `backing store spec: "mem", "dir:PATH" or "zdir:PATH"`)
		storeDir  = flag.String("storedir", "", "backing store directory (sugar for -store dir:PATH)")
		storeGC   = flag.Duration("storegc", 0, "background retention GC interval (0 = off)")
	)
	flag.Parse()

	spec := *storeSpec
	if spec == "" && *storeDir != "" {
		spec = "dir:" + *storeDir
	}
	backing, err := store.Open(spec, store.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mojstored: %v\n", err)
		os.Exit(1)
	}
	if *storeGC > 0 {
		gc := store.StartGC(backing, *storeGC, store.Options{})
		defer gc.Stop()
	}

	s, err := store.Serve(*listen, backing)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mojstored: %v\n", err)
		os.Exit(1)
	}
	if spec == "" {
		spec = "mem"
	}
	fmt.Printf("mojstored: serving %s on %s\n", spec, s.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mojstored: shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mojstored: %v\n", err)
		os.Exit(1)
	}
}
