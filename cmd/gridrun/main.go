// Command gridrun executes the paper's grid computation (Figure 2) and
// verifies the result against the sequential reference implementation —
// on a simulated in-process cluster (the default), or distributed across
// real OS processes connected by the TCP cluster transport.
//
// Usage:
//
//	gridrun [flags]
//
//	-nodes N     compute processes (default 3)
//	-rows N      rows per node (default 4)
//	-cols N      columns (default 8)
//	-steps N     timesteps (default 20)
//	-ck N        checkpoint interval (default 4)
//	-workers N   concurrently executing node quanta (0 = unbounded)
//	-fail SPEC   inject a failure: "node@checkpoints", e.g. "1@2"
//	-timeout D   run timeout (default 2m)
//	-v           print per-node checksums
//
// Distributed mode:
//
//	-distributed      coordinator that spawns one worker process per node
//	                  over loopback TCP and verifies the merged result
//	-listen ADDR      coordinator listen address (default 127.0.0.1:0)
//	-storedir DIR     back the shared checkpoint store with a directory
//	                  (the paper's NFS mount; default: in-memory)
//	-coordinator      coordinator that spawns nothing: start workers
//	                  yourself with -join (pairs with -listen)
//	-join ADDR        run as a worker joined to a coordinator
//	-node N           the node id this worker hosts (with -join)
//	-resume NAME      resurrect the node from this shared-store
//	                  checkpoint instead of starting fresh (with -join)
//
// A worker ordered to die by the coordinator's failure injection exits
// with code 3 (it is a simulated crash, not an error).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/grid"
	"repro/internal/migrate"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 3, "compute processes")
		rows    = flag.Int("rows", 4, "rows per node")
		cols    = flag.Int("cols", 8, "columns")
		steps   = flag.Int("steps", 20, "timesteps")
		ck      = flag.Int("ck", 4, "checkpoint interval")
		workers = flag.Int("workers", 0, "concurrently executing node quanta (0 = unbounded)")
		failStr = flag.String("fail", "", `failure plan "node@checkpoints", e.g. "1@2"`)
		timeout = flag.Duration("timeout", 2*time.Minute, "run timeout")
		verbose = flag.Bool("v", false, "print per-node checksums")

		distributed = flag.Bool("distributed", false, "spawn one worker OS process per node over loopback TCP")
		coordOnly   = flag.Bool("coordinator", false, "coordinate externally started -join workers")
		listen      = flag.String("listen", "127.0.0.1:0", "coordinator listen address")
		storeDir    = flag.String("storedir", "", "directory for the shared checkpoint store (default: in-memory)")
		join        = flag.String("join", "", "run as a worker joined to this coordinator address")
		node        = flag.Int64("node", 0, "node id hosted by this worker (with -join)")
		resume      = flag.String("resume", "", "checkpoint name to resurrect from (with -join)")
	)
	flag.Parse()

	p := grid.Params{
		Nodes: *nodes, RowsPerNode: *rows, Cols: *cols,
		Steps: *steps, CheckpointInterval: *ck, Workers: *workers,
	}

	if *join != "" {
		runWorker(*join, *node, *resume, p, *timeout)
		return
	}

	fail := parseFail(*failStr)
	fmt.Printf("grid: %d nodes × (%d×%d), %d steps, checkpoint every %d, workers %d\n",
		p.Nodes, p.RowsPerNode, p.Cols, p.Steps, p.CheckpointInterval, p.Workers)
	if fail != nil {
		fmt.Printf("grid: will kill node %d after checkpoint %d and resurrect it\n",
			fail.Node, fail.AfterCheckpoints)
	}

	var (
		res *grid.Result
		err error
	)
	switch {
	case *distributed, *coordOnly:
		res, err = runCoordinator(p, fail, *distributed, *listen, *storeDir, *timeout)
	default:
		res, err = grid.Run(p, fail, *timeout)
	}
	if err != nil {
		fatal(err)
	}

	want := grid.Reference(p)
	ok := true
	for n := range want {
		match := res.Checksums[n] == want[n]
		ok = ok && match
		if *verbose || !match {
			fmt.Printf("  node %d: checksum %d (reference %d) %s\n",
				n, res.Checksums[n], want[n], tick(match))
		}
	}
	fmt.Printf("grid: elapsed %s, rollbacks %d, resurrections %d\n",
		res.Elapsed.Round(time.Millisecond), res.Rollbacks, res.Resurrections)
	if !ok {
		fatal(fmt.Errorf("checksums diverged from the reference"))
	}
	fmt.Println("grid: result matches the sequential reference exactly")
}

// runWorker is the -join mode: host one node, exit 0 on a clean finish
// and 3 when the coordinator's failure injection killed us.
func runWorker(join string, node int64, resume string, p grid.Params, timeout time.Duration) {
	st, err := grid.RunWorker(grid.WorkerConfig{
		Join: join, Node: node, Params: p, Resume: resume,
		Timeout: timeout, Stdout: os.Stdout,
	})
	if err == grid.ErrNodeFailed {
		fmt.Fprintf(os.Stderr, "gridrun: worker %d: killed by coordinator (simulated crash)\n", node)
		os.Exit(3)
	}
	if err != nil {
		fatal(fmt.Errorf("worker %d: %w", node, err))
	}
	fmt.Fprintf(os.Stderr, "gridrun: worker %d: %s (halt %d, %d steps)\n",
		node, st.Status, st.Halt, st.Steps)
}

// runCoordinator is the -distributed / -coordinator mode.
func runCoordinator(p grid.Params, fail *grid.FailurePlan, spawnWorkers bool, listen, storeDir string, timeout time.Duration) (*grid.Result, error) {
	var store migrate.Store
	if storeDir != "" {
		ds, err := cluster.NewDirStore(storeDir)
		if err != nil {
			return nil, err
		}
		store = ds
	}
	cfg := grid.DistributedConfig{
		Listen: listen,
		Store:  store,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "gridrun: "+format+"\n", args...)
		},
	}
	if spawnWorkers {
		self, err := os.Executable()
		if err != nil {
			return nil, err
		}
		cfg.Spawn = func(join string, node int64, resume string) error {
			args := []string{
				"-join", join,
				"-node", strconv.FormatInt(node, 10),
				"-resume", resume,
				"-nodes", strconv.Itoa(p.Nodes),
				"-rows", strconv.Itoa(p.RowsPerNode),
				"-cols", strconv.Itoa(p.Cols),
				"-steps", strconv.Itoa(p.Steps),
				"-ck", strconv.Itoa(p.CheckpointInterval),
				"-timeout", timeout.String(),
			}
			cmd := exec.Command(self, args...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return err
			}
			// Reap in the background; exit code 3 is the injected crash.
			go func() { _ = cmd.Wait() }()
			return nil
		}
	}
	return grid.RunDistributed(p, fail, cfg, timeout)
}

func parseFail(spec string) *grid.FailurePlan {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, "@", 2)
	if len(parts) != 2 {
		fatal(fmt.Errorf(`bad -fail %q, want "node@checkpoints"`, spec))
	}
	node, err1 := strconv.ParseInt(parts[0], 10, 64)
	after, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		fatal(fmt.Errorf("bad -fail %q", spec))
	}
	return &grid.FailurePlan{Node: node, AfterCheckpoints: after, RestartDelay: 25 * time.Millisecond}
}

func tick(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridrun:", err)
	os.Exit(1)
}
