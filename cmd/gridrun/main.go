// Command gridrun is the historical name for running the paper's grid
// computation (§2, Figure 2). Since the workload subsystem landed it is
// a thin alias for cmd/mojrun pinned to -app grid: every flag
// (-nodes/-rows/-cols/-steps/-ck/-workers/-fail/-distributed/
// -coordinator/-join/…) behaves identically, including the repeatable
// -fail and the -script fault scenarios. See cmd/mojrun for the full
// flag reference.
package main

import (
	"os"

	"repro/internal/workload/cli"

	_ "repro/internal/workload/apps" // register grid (and the rest)
)

func main() {
	os.Exit(cli.Main(os.Args[1:], "gridrun", "grid", os.Stdout, os.Stderr))
}
