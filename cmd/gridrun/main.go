// Command gridrun executes the paper's grid computation (Figure 2) on a
// simulated cluster, optionally killing and resurrecting a node mid-run,
// and verifies the result against the sequential reference implementation.
//
// Usage:
//
//	gridrun [flags]
//
//	-nodes N     compute processes (default 3)
//	-rows N      rows per node (default 4)
//	-cols N      columns (default 8)
//	-steps N     timesteps (default 20)
//	-ck N        checkpoint interval (default 4)
//	-workers N   concurrently executing node quanta (0 = unbounded)
//	-fail SPEC   inject a failure: "node@checkpoints", e.g. "1@2"
//	-timeout D   run timeout (default 2m)
//	-v           print per-node checksums
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/grid"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 3, "compute processes")
		rows    = flag.Int("rows", 4, "rows per node")
		cols    = flag.Int("cols", 8, "columns")
		steps   = flag.Int("steps", 20, "timesteps")
		ck      = flag.Int("ck", 4, "checkpoint interval")
		workers = flag.Int("workers", 0, "concurrently executing node quanta (0 = unbounded)")
		failStr = flag.String("fail", "", `failure plan "node@checkpoints", e.g. "1@2"`)
		timeout = flag.Duration("timeout", 2*time.Minute, "run timeout")
		verbose = flag.Bool("v", false, "print per-node checksums")
	)
	flag.Parse()

	p := grid.Params{
		Nodes: *nodes, RowsPerNode: *rows, Cols: *cols,
		Steps: *steps, CheckpointInterval: *ck, Workers: *workers,
	}
	var fail *grid.FailurePlan
	if *failStr != "" {
		parts := strings.SplitN(*failStr, "@", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf(`bad -fail %q, want "node@checkpoints"`, *failStr))
		}
		node, err1 := strconv.ParseInt(parts[0], 10, 64)
		after, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("bad -fail %q", *failStr))
		}
		fail = &grid.FailurePlan{Node: node, AfterCheckpoints: after, RestartDelay: 25 * time.Millisecond}
	}

	fmt.Printf("grid: %d nodes × (%d×%d), %d steps, checkpoint every %d, workers %d\n",
		p.Nodes, p.RowsPerNode, p.Cols, p.Steps, p.CheckpointInterval, p.Workers)
	if fail != nil {
		fmt.Printf("grid: will kill node %d after checkpoint %d and resurrect it\n",
			fail.Node, fail.AfterCheckpoints)
	}

	res, err := grid.Run(p, fail, *timeout)
	if err != nil {
		fatal(err)
	}
	want := grid.Reference(p)
	ok := true
	for n := range want {
		match := res.Checksums[n] == want[n]
		ok = ok && match
		if *verbose || !match {
			fmt.Printf("  node %d: checksum %d (reference %d) %s\n",
				n, res.Checksums[n], want[n], tick(match))
		}
	}
	fmt.Printf("grid: elapsed %s, rollbacks %d, resurrections %d\n",
		res.Elapsed.Round(time.Millisecond), res.Rollbacks, res.Resurrections)
	if !ok {
		fatal(fmt.Errorf("checksums diverged from the reference"))
	}
	fmt.Println("grid: result matches the sequential reference exactly")
}

func tick(ok bool) string {
	if ok {
		return "ok"
	}
	return "MISMATCH"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridrun:", err)
	os.Exit(1)
}
