package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildGridrun compiles this command once per test binary so the
// integration tests below exercise real, separate OS processes.
var gridrunBin struct {
	path string
	err  error
}

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "gridrun-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	gridrunBin.path = filepath.Join(dir, "gridrun")
	out, err := exec.Command("go", "build", "-o", gridrunBin.path, ".").CombinedOutput()
	if err != nil {
		gridrunBin.err = fmt.Errorf("building gridrun: %v\n%s", err, out)
	}
	os.Exit(m.Run())
}

func bin(t *testing.T) string {
	t.Helper()
	if gridrunBin.err != nil {
		t.Fatal(gridrunBin.err)
	}
	return gridrunBin.path
}

// TestDistributedSubprocessLoopback: coordinator spawns one worker OS
// process per node over loopback TCP; the merged grid must match the
// sequential reference bit-exactly.
func TestDistributedSubprocessLoopback(t *testing.T) {
	out, err := exec.Command(bin(t), "-distributed", "-nodes", "3", "-steps", "20", "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("gridrun -distributed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("matches the sequential reference exactly")) {
		t.Fatalf("no exact-match verdict in output:\n%s", out)
	}
}

// TestDistributedSubprocessFailure: one worker process is killed after
// its second checkpoint and a fresh process resurrects it from the
// directory-backed shared store (the paper's NFS mount).
func TestDistributedSubprocessFailure(t *testing.T) {
	storeDir := t.TempDir()
	out, err := exec.Command(bin(t), "-distributed", "-nodes", "3", "-steps", "20",
		"-fail", "1@2", "-storedir", storeDir).CombinedOutput()
	if err != nil {
		t.Fatalf("gridrun -distributed -fail: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("matches the sequential reference exactly")) {
		t.Fatalf("no exact-match verdict in output:\n%s", out)
	}
	if !bytes.Contains(out, []byte("resurrections 1")) {
		t.Fatalf("no resurrection recorded:\n%s", out)
	}
	ents, err := os.ReadDir(storeDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("shared store dir empty (%v); checkpoints never hit the mount", err)
	}
}

// TestCoordinatorWithManualJoins: -coordinator spawns nothing; workers
// started separately with -join find it and the run completes.
func TestCoordinatorWithManualJoins(t *testing.T) {
	coord := exec.Command(bin(t), "-coordinator", "-listen", "127.0.0.1:0",
		"-nodes", "2", "-rows", "4", "-cols", "8", "-steps", "8", "-timeout", "1m")
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	coord.Stdout = &stdout
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = coord.Process.Kill() }()

	// The coordinator prints the join address once it is listening.
	addrRe := regexp.MustCompile(`join (127\.0\.0\.1:\d+)`)
	addrCh := make(chan string, 1)
	var errLines strings.Builder
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			errLines.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator never announced its address\n%s", errLines.String())
	}

	for n := 0; n < 2; n++ {
		w := exec.Command(bin(t), "-join", addr, "-node", fmt.Sprint(n),
			"-nodes", "2", "-rows", "4", "-cols", "8", "-steps", "8")
		wout := &bytes.Buffer{}
		w.Stdout, w.Stderr = wout, wout
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		go func(n int, cmd *exec.Cmd, out *bytes.Buffer) {
			if err := cmd.Wait(); err != nil {
				t.Errorf("worker %d: %v\n%s", n, err, out.String())
			}
		}(n, w, wout)
	}

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s\n%s", err, stdout.String(), errLines.String())
	}
	if !strings.Contains(stdout.String(), "matches the sequential reference exactly") {
		t.Fatalf("no exact-match verdict:\n%s", stdout.String())
	}
}
